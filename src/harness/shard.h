// Sharded execution of experiment grids across processes (and machines).
//
// The contract has three pieces (see DESIGN.md § Sharded execution):
//
//  1. A GridSpec — a small JSON document naming the grid (apps, modes,
//     tolerances, repetitions, seed, machine size, faults, telemetry).
//     Every process builds the *same* ExperimentPlan from the spec
//     (build_plan is a pure function of it; no environment leaks in), so
//     job indices are portable identities: job i means the same
//     (config, derived seed) everywhere.  The canonical serialization is
//     fingerprinted (FNV-1a) and stamped into every result file.
//
//  2. Shard workers — each executes a subset of the job indices (static
//     round-robin, or dynamic chunk claiming for imbalanced grids) and
//     streams one JSONL line per job: a versioned header line, then
//     {"job":i,"result":{...}} records with every double as its IEEE-754
//     bit pattern (shard_codec).  Files are self-describing and
//     machine-portable; any file mover works.
//
//  3. A gatherer — validates headers/fingerprints, demands every job
//     exactly once across the input files (a truncated or duplicated
//     file is an error, never a silent partial merge), decodes results
//     by index, and finishes the plan.  Because job seeds are derived
//     (job_seed) and aggregation is index-ordered, the gathered
//     aggregates are bit-identical to a serial in-process run — the
//     tier-1 shard determinism suite byte-compares the Evaluation CSV
//     and telemetry exports across serial / 1-shard / N-shard /
//     dynamic-chunk executions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "harness/experiment.h"
#include "harness/plan.h"

namespace dufp::harness {

/// Shard file format identity; bump the version on any wire change.
inline constexpr const char* kShardResultFormat = "dufp-shard-result";
inline constexpr const char* kGridSpecFormat = "dufp-grid-spec";
inline constexpr int kShardFormatVersion = 1;

/// A self-contained description of one evaluation grid.  Everything that
/// influences results lives here — never in the environment — so two
/// processes parsing the same spec build identical plans.
struct GridSpec {
  std::string name = "grid";
  std::vector<workloads::AppId> apps;
  /// Registry policy names, canonical spelling.  Serialized under the
  /// JSON key "modes" (the wire name predates the policy registry and is
  /// pinned by the fingerprint); parsing canonicalizes case/alias
  /// spellings and rejects unknown or duplicate entries with one
  /// aggregated error.
  std::vector<std::string> policies;
  std::vector<double> tolerances;
  int repetitions = 3;
  std::uint64_t seed = 1;
  int sockets = 4;
  double fault_rate = 0.0;     ///< > 0 runs the whole grid under a storm
  std::uint64_t fault_seed = 0;
  bool telemetry = false;

  /// Canonical JSON (fixed key order, %.17g tolerances); parse() of the
  /// output reproduces the spec exactly.
  json::Value to_json() const;
  std::string canonical_text() const;
  /// FNV-1a over canonical_text(); stamped into every shard file.
  std::uint64_t fingerprint() const;

  static GridSpec from_json(const json::Value& v);
  static GridSpec parse(std::string_view text);
  static GridSpec load(const std::string& path);

  /// The reference grid the sharded bench and the quickstart use:
  /// 2 apps x (baseline + {DUF, DUFP} x {5%, 10%}) x 3 repetitions.
  static GridSpec reference();

  /// Every problem found (empty = valid).
  std::vector<std::string> validate() const;
};

/// The spec's plan plus the per-app cell index needed to reassemble
/// Evaluations.  Deterministic pure function of the spec.
struct GridPlan {
  ExperimentPlan plan;
  std::vector<AppGridCells> index;
};
GridPlan build_plan(const GridSpec& spec);

/// Static round-robin assignment: the job indices owned by `shard` of
/// `shards` (j % shards == shard).  Round-robin, not contiguous blocks,
/// so repetitions of a long-running cell spread across shards.
std::vector<std::size_t> shard_jobs_static(std::size_t job_count, int shards,
                                           int shard);

/// Claims chunks of the job list for dynamic load balancing.  try_claim
/// must return true exactly once per chunk across every cooperating
/// worker (workers may race).
class ChunkClaimer {
 public:
  virtual ~ChunkClaimer() = default;
  virtual bool try_claim(int chunk) = 0;
};

/// File-based claimer: chunk k is claimed by whoever wins the
/// O_CREAT|O_EXCL creation of `<dir>/chunk<k>.claim` — atomic on POSIX
/// filesystems, so concurrent local workers never double-run a chunk.
/// (Cross-machine dynamic mode needs a shared filesystem; static
/// sharding needs no coordination at all.)
class FileChunkClaimer final : public ChunkClaimer {
 public:
  /// `dir` must exist and be shared by every cooperating worker.
  explicit FileChunkClaimer(std::string dir);
  bool try_claim(int chunk) override;

 private:
  std::string dir_;
};

struct ShardRunOptions {
  int shard = 0;   ///< this worker's id in [0, shards)
  int shards = 1;  ///< total workers
  int threads = 1; ///< in-process thread pool width (DUFP_THREADS-style)

  /// > 0 switches from static round-robin to dynamic chunk claiming:
  /// the job list is cut into chunks of this size and workers claim
  /// chunks through `claimer` until none remain.  `shard`/`shards` then
  /// only label the output file.
  int chunk_size = 0;
  ChunkClaimer* claimer = nullptr;  ///< required when chunk_size > 0
};

/// Executes this worker's share of the spec's jobs and streams the
/// versioned JSONL (header line + one line per job) to `out`.
void run_shard(const GridSpec& spec, const ShardRunOptions& options,
               std::ostream& out);

/// Reads shard JSONL files back into per-job results (indexed by job).
/// Throws std::runtime_error naming the file and line on: malformed
/// JSON, a wrong format/version/fingerprint header, an out-of-range or
/// duplicate job index, or jobs missing across the whole input set.
std::vector<RunResult> gather_shards(const GridSpec& spec,
                                     const std::vector<std::string>& files);

/// Everything a gathered grid produces, in deterministic bytes.
struct GridOutputs {
  std::vector<Evaluation> evaluations;

  /// Per-grid-point CSV (%.17g, health columns included) — the byte
  /// surface the shard determinism suite compares.
  std::string evaluation_csv;

  /// Job-labelled merge of every job's Prometheus exposition (samples
  /// stable-sorted by metric name, job order within a name); empty when
  /// the spec has telemetry off.
  std::string merged_prometheus;

  /// Job 0's full snapshot for telemetry::export_run (flight events and
  /// dumps are per-job artifacts; the merge covers metrics).
  std::optional<telemetry::TelemetrySnapshot> job0_telemetry;
};

/// Aggregates gathered per-job results exactly as a serial run would
/// (ExperimentPlan::finish_with) and renders the deterministic outputs.
GridOutputs finalize_grid(const GridSpec& spec,
                          std::vector<RunResult> results);

/// Runs the whole spec in-process (threads as given) and finalizes —
/// the serial reference the shard paths must match byte for byte.
GridOutputs run_grid_serial(const GridSpec& spec, int threads = 1);

/// The CSV in GridOutputs::evaluation_csv, exposed for reuse.
std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<std::string>& policies,
                           const std::vector<double>& tolerances);
std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<PolicyMode>& modes,
                           const std::vector<double>& tolerances);

}  // namespace dufp::harness
