#include "harness/experiment.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/expect.h"

namespace dufp::harness {

const std::vector<double>& paper_tolerances() {
  static const std::vector<double> tols{0.0, 0.05, 0.10, 0.20};
  return tols;
}

RunConfig default_run_config(const workloads::WorkloadProfile& profile) {
  RunConfig cfg;
  cfg.profile = &profile;
  cfg.machine.sockets = sockets_from_env();
  return cfg;
}

Evaluation::Evaluation(workloads::AppId app, RepeatedResult baseline,
                       std::vector<EvaluationCell> cells)
    : app_(app), baseline_(std::move(baseline)), cells_(std::move(cells)) {}

const RepeatedResult& Evaluation::at(PolicyMode mode,
                                     double tolerance) const {
  for (const auto& c : cells_) {
    if (c.mode == mode && std::abs(c.tolerance - tolerance) < 1e-9) {
      return c.result;
    }
  }
  throw std::invalid_argument("Evaluation: no cell for mode/tolerance");
}

double Evaluation::slowdown_pct(PolicyMode mode, double tolerance) const {
  return percent_over(at(mode, tolerance).exec_seconds.mean,
                      baseline_.exec_seconds.mean);
}

double Evaluation::slowdown_pct_min(PolicyMode mode,
                                    double tolerance) const {
  return percent_over(at(mode, tolerance).exec_seconds.min,
                      baseline_.exec_seconds.mean);
}

double Evaluation::slowdown_pct_max(PolicyMode mode,
                                    double tolerance) const {
  return percent_over(at(mode, tolerance).exec_seconds.max,
                      baseline_.exec_seconds.mean);
}

double Evaluation::pkg_power_savings_pct(PolicyMode mode,
                                         double tolerance) const {
  return -percent_over(at(mode, tolerance).avg_pkg_power_w.mean,
                       baseline_.avg_pkg_power_w.mean);
}

double Evaluation::dram_power_savings_pct(PolicyMode mode,
                                          double tolerance) const {
  return -percent_over(at(mode, tolerance).avg_dram_power_w.mean,
                       baseline_.avg_dram_power_w.mean);
}

double Evaluation::energy_change_pct(PolicyMode mode,
                                     double tolerance) const {
  return percent_over(at(mode, tolerance).total_energy_j.mean,
                      baseline_.total_energy_j.mean);
}

Evaluation evaluate_app(workloads::AppId app,
                        const std::vector<PolicyMode>& modes,
                        const std::vector<double>& tolerances,
                        int repetitions, std::uint64_t seed) {
  const auto& prof = workloads::profile(app);
  RunConfig base = default_run_config(prof);
  base.seed = seed;

  note_progress("  " + workloads::app_name(app) + ": baseline");
  RunConfig def = base;
  def.mode = PolicyMode::none;
  RepeatedResult baseline = run_repeated(def, repetitions);

  std::vector<EvaluationCell> cells;
  for (PolicyMode mode : modes) {
    for (double tol : tolerances) {
      note_progress("  " + workloads::app_name(app) + ": " +
                    policy_mode_name(mode) + " @ " +
                    std::to_string(static_cast<int>(tol * 100 + 0.5)) + "%");
      RunConfig cfg = base;
      cfg.mode = mode;
      cfg.tolerated_slowdown = tol;
      EvaluationCell cell;
      cell.mode = mode;
      cell.tolerance = tol;
      cell.result = run_repeated(cfg, repetitions);
      cells.push_back(std::move(cell));
    }
  }
  return Evaluation(app, std::move(baseline), std::move(cells));
}

void note_progress(const std::string& what) {
  if (std::getenv("DUFP_QUIET") != nullptr) return;
  std::fprintf(stderr, "[dufp-bench] %s\n", what.c_str());
}

}  // namespace dufp::harness
