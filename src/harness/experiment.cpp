#include "harness/experiment.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/expect.h"
#include "common/string_util.h"
#include "harness/options.h"
#include "harness/plan.h"

namespace dufp::harness {

const std::vector<double>& paper_tolerances() {
  static const std::vector<double> tols{0.0, 0.05, 0.10, 0.20};
  return tols;
}

RunConfig default_run_config(const workloads::WorkloadProfile& profile) {
  const auto opts = BenchOptions::from_env();
  RunConfig cfg;
  cfg.profile = &profile;
  cfg.machine.sockets = opts.sockets;
  // DUFP_FAULT_RATE > 0 turns any bench into a robustness experiment: the
  // whole grid runs under the storm preset, and health counters surface
  // in the output.
  if (opts.fault_rate > 0.0) {
    cfg.faults = faults::FaultOptions::storm(opts.fault_rate, opts.fault_seed);
  }
  return cfg;
}

std::vector<std::string> policy_names(const std::vector<PolicyMode>& modes) {
  std::vector<std::string> names;
  names.reserve(modes.size());
  for (PolicyMode m : modes) names.push_back(core::to_string(m));
  return names;
}

Evaluation::Evaluation(workloads::AppId app, RepeatedResult baseline,
                       std::vector<EvaluationCell> cells)
    : app_(app), baseline_(std::move(baseline)), cells_(std::move(cells)) {}

const RepeatedResult& Evaluation::at(std::string_view policy,
                                     double tolerance) const {
  for (const auto& c : cells_) {
    if (c.policy == policy && std::abs(c.tolerance - tolerance) < 1e-9) {
      return c.result;
    }
  }
  throw std::invalid_argument("Evaluation: no cell for policy \"" +
                              std::string(policy) + "\" / tolerance");
}

double Evaluation::slowdown_pct(std::string_view policy,
                                double tolerance) const {
  return percent_over(at(policy, tolerance).exec_seconds.mean,
                      baseline_.exec_seconds.mean);
}

double Evaluation::slowdown_pct_min(std::string_view policy,
                                    double tolerance) const {
  return percent_over(at(policy, tolerance).exec_seconds.min,
                      baseline_.exec_seconds.mean);
}

double Evaluation::slowdown_pct_max(std::string_view policy,
                                    double tolerance) const {
  return percent_over(at(policy, tolerance).exec_seconds.max,
                      baseline_.exec_seconds.mean);
}

double Evaluation::pkg_power_savings_pct(std::string_view policy,
                                         double tolerance) const {
  return -percent_over(at(policy, tolerance).avg_pkg_power_w.mean,
                       baseline_.avg_pkg_power_w.mean);
}

double Evaluation::dram_power_savings_pct(std::string_view policy,
                                          double tolerance) const {
  return -percent_over(at(policy, tolerance).avg_dram_power_w.mean,
                       baseline_.avg_dram_power_w.mean);
}

double Evaluation::energy_change_pct(std::string_view policy,
                                     double tolerance) const {
  return percent_over(at(policy, tolerance).total_energy_j.mean,
                      baseline_.total_energy_j.mean);
}

Evaluation evaluate_app(workloads::AppId app,
                        const std::vector<std::string>& policies,
                        const std::vector<double>& tolerances,
                        int repetitions, std::uint64_t seed) {
  auto evals = evaluate_apps({app}, policies, tolerances, repetitions, seed);
  return std::move(evals.front());
}

Evaluation evaluate_app(workloads::AppId app,
                        const std::vector<PolicyMode>& modes,
                        const std::vector<double>& tolerances,
                        int repetitions, std::uint64_t seed) {
  return evaluate_app(app, policy_names(modes), tolerances, repetitions, seed);
}

std::vector<AppGridCells> add_grid_cells(ExperimentPlan& plan,
                                         const std::vector<workloads::AppId>& apps,
                                         const std::vector<std::string>& policies,
                                         const std::vector<double>& tolerances,
                                         int repetitions, std::uint64_t seed,
                                         const BaseConfigFn& base_config) {
  std::vector<AppGridCells> index;
  index.reserve(apps.size());

  for (workloads::AppId app : apps) {
    const auto& prof = workloads::profile(app);
    RunConfig base = base_config(prof);
    base.seed = seed;

    AppGridCells ac;
    ac.app = app;
    RunConfig def = base;
    def.mode = PolicyMode::none;
    def.policy_name.clear();
    ac.baseline = plan.add_cell(def, repetitions,
                                workloads::app_name(app) + ": baseline");
    for (const std::string& policy : policies) {
      for (double tol : tolerances) {
        RunConfig cfg = base;
        cfg.policy_name = policy;
        cfg.tolerated_slowdown = tol;
        ac.cells.push_back(plan.add_cell(
            cfg, repetitions,
            workloads::app_name(app) + ": " + policy + " @ " +
                std::to_string(static_cast<int>(tol * 100 + 0.5)) + "%"));
      }
    }
    index.push_back(std::move(ac));
  }
  return index;
}

std::vector<AppGridCells> add_grid_cells(ExperimentPlan& plan,
                                         const std::vector<workloads::AppId>& apps,
                                         const std::vector<PolicyMode>& modes,
                                         const std::vector<double>& tolerances,
                                         int repetitions, std::uint64_t seed,
                                         const BaseConfigFn& base_config) {
  return add_grid_cells(plan, apps, policy_names(modes), tolerances,
                        repetitions, seed, base_config);
}

std::vector<Evaluation> assemble_evaluations(
    const ExperimentPlan& plan, const std::vector<AppGridCells>& index,
    const std::vector<std::string>& policies,
    const std::vector<double>& tolerances) {
  std::vector<Evaluation> evals;
  evals.reserve(index.size());
  for (const auto& ac : index) {
    std::vector<EvaluationCell> cells;
    std::size_t c = 0;
    for (const std::string& policy : policies) {
      for (double tol : tolerances) {
        EvaluationCell cell;
        cell.policy = policy;
        cell.tolerance = tol;
        cell.result = plan.result(ac.cells[c++]);
        cells.push_back(std::move(cell));
      }
    }
    evals.emplace_back(ac.app, plan.result(ac.baseline), std::move(cells));
  }
  return evals;
}

std::vector<Evaluation> assemble_evaluations(
    const ExperimentPlan& plan, const std::vector<AppGridCells>& index,
    const std::vector<PolicyMode>& modes,
    const std::vector<double>& tolerances) {
  return assemble_evaluations(plan, index, policy_names(modes), tolerances);
}

std::vector<Evaluation> evaluate_apps(
    const std::vector<workloads::AppId>& apps,
    const std::vector<std::string>& policies,
    const std::vector<double>& tolerances, int repetitions,
    std::uint64_t seed) {
  // Enumerate the whole apps x (baseline + policies x tolerances) grid as
  // one job set; cell ids are recorded per app so the evaluations can be
  // reassembled after the single parallel run.
  ExperimentPlan plan;
  const auto index =
      add_grid_cells(plan, apps, policies, tolerances, repetitions, seed,
                     [](const workloads::WorkloadProfile& prof) {
                       return default_run_config(prof);
                     });

  const int threads = BenchOptions::from_env().resolved_threads();
  note_progress(strf("%zu jobs across %zu cells on %d threads",
                     plan.job_count(), plan.cell_count(), threads));
  plan.run(threads);

  return assemble_evaluations(plan, index, policies, tolerances);
}

std::vector<Evaluation> evaluate_apps(
    const std::vector<workloads::AppId>& apps,
    const std::vector<PolicyMode>& modes,
    const std::vector<double>& tolerances, int repetitions,
    std::uint64_t seed) {
  return evaluate_apps(apps, policy_names(modes), tolerances, repetitions,
                       seed);
}

void note_progress(const std::string& what) {
  if (BenchOptions::from_env().quiet) return;
  std::fprintf(stderr, "[dufp-bench] %s\n", what.c_str());
}

}  // namespace dufp::harness
