// Figure-level experiment orchestration: evaluate an application under
// the default configuration, DUF, and DUFP across tolerated slowdowns,
// and derive the percentage metrics the paper's figures plot.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "harness/plan.h"
#include "harness/runner.h"

namespace dufp::harness {

/// The tolerated-slowdown grid of the paper's evaluation (Sec. V).
const std::vector<double>& paper_tolerances();  // {0, 0.05, 0.10, 0.20}

/// A RunConfig with the yeti-2 machine (socket count from DUFP_SOCKETS),
/// paper-default policy, and 1 ms tick.
RunConfig default_run_config(const workloads::WorkloadProfile& profile);

/// Legacy enum list → canonical registry names (the figure benches still
/// enumerate the paper's four controllers as PolicyMode values).
std::vector<std::string> policy_names(const std::vector<PolicyMode>& modes);

struct EvaluationCell {
  /// Canonical registry policy name ("DUF", "cuttlefish", ...).
  std::string policy;
  double tolerance = 0.0;
  RepeatedResult result;
};

class Evaluation {
 public:
  Evaluation(workloads::AppId app, RepeatedResult baseline,
             std::vector<EvaluationCell> cells);

  workloads::AppId app() const { return app_; }
  const RepeatedResult& baseline() const { return baseline_; }

  /// Cells are keyed by policy name; the PolicyMode overloads forward
  /// through core::to_string for legacy call sites.
  const RepeatedResult& at(std::string_view policy, double tolerance) const;
  const RepeatedResult& at(PolicyMode mode, double tolerance) const {
    return at(core::to_string(mode), tolerance);
  }

  // -- derived percentages (all relative to the default run) -------------------

  /// Execution-time overhead in percent (positive = slower).
  double slowdown_pct(std::string_view policy, double tolerance) const;
  /// Min/max over the kept runs (error bars).
  double slowdown_pct_min(std::string_view policy, double tolerance) const;
  double slowdown_pct_max(std::string_view policy, double tolerance) const;

  /// Processor power savings in percent (positive = saved).
  double pkg_power_savings_pct(std::string_view policy,
                               double tolerance) const;
  /// DRAM power savings in percent.
  double dram_power_savings_pct(std::string_view policy,
                                double tolerance) const;
  /// CPU+DRAM energy change in percent (negative = saved).
  double energy_change_pct(std::string_view policy, double tolerance) const;

  // Legacy enum forwarders.
  double slowdown_pct(PolicyMode m, double tol) const {
    return slowdown_pct(core::to_string(m), tol);
  }
  double slowdown_pct_min(PolicyMode m, double tol) const {
    return slowdown_pct_min(core::to_string(m), tol);
  }
  double slowdown_pct_max(PolicyMode m, double tol) const {
    return slowdown_pct_max(core::to_string(m), tol);
  }
  double pkg_power_savings_pct(PolicyMode m, double tol) const {
    return pkg_power_savings_pct(core::to_string(m), tol);
  }
  double dram_power_savings_pct(PolicyMode m, double tol) const {
    return dram_power_savings_pct(core::to_string(m), tol);
  }
  double energy_change_pct(PolicyMode m, double tol) const {
    return energy_change_pct(core::to_string(m), tol);
  }

 private:
  workloads::AppId app_;
  RepeatedResult baseline_;
  std::vector<EvaluationCell> cells_;
};

/// Runs the full grid for one application: baseline + {policies} x
/// {tolerances}, `repetitions` runs each.  Thin wrapper over
/// ExperimentPlan — every (config, seed) job of the grid is enumerated up
/// front and executed across DUFP_THREADS workers, with results
/// bit-identical to a serial run.
Evaluation evaluate_app(workloads::AppId app,
                        const std::vector<std::string>& policies,
                        const std::vector<double>& tolerances,
                        int repetitions, std::uint64_t seed = 1);
Evaluation evaluate_app(workloads::AppId app,
                        const std::vector<PolicyMode>& modes,
                        const std::vector<double>& tolerances,
                        int repetitions, std::uint64_t seed = 1);

/// Same grid for several applications scheduled as ONE job set — the
/// whole apps x (baseline + policies x tolerances) x repetitions matrix
/// runs through a single ExperimentPlan, so parallelism spans apps, not
/// just cells.  This is what the figure benches call.
std::vector<Evaluation> evaluate_apps(
    const std::vector<workloads::AppId>& apps,
    const std::vector<std::string>& policies,
    const std::vector<double>& tolerances, int repetitions,
    std::uint64_t seed = 1);
std::vector<Evaluation> evaluate_apps(
    const std::vector<workloads::AppId>& apps,
    const std::vector<PolicyMode>& modes,
    const std::vector<double>& tolerances, int repetitions,
    std::uint64_t seed = 1);

// -- grid enumeration shared with the shard layer ----------------------------

/// Cell ids of one application's slice of a grid plan, as laid out by
/// add_grid_cells.
struct AppGridCells {
  workloads::AppId app = workloads::AppId::cg;
  ExperimentPlan::CellId baseline = 0;
  std::vector<ExperimentPlan::CellId> cells;  ///< policy-major, tolerances inner
};

/// Produces each app's base RunConfig (machine size, faults, telemetry —
/// everything but mode/tolerance/seed, which the grid fills in).
using BaseConfigFn =
    std::function<RunConfig(const workloads::WorkloadProfile&)>;

/// Enumerates the apps x (baseline + policies x tolerances) grid into
/// `plan`, one cell per grid point with `repetitions` jobs each.  Cell
/// order — and hence the job enumeration (see ExperimentPlan::JobRef) —
/// is: per app in list order, baseline first, then policy-major with
/// tolerances inner.  Deterministic: two processes calling this with
/// equal arguments build byte-equal plans, which is what lets shard
/// workers and the gatherer agree on job identities without talking to
/// each other.
std::vector<AppGridCells> add_grid_cells(ExperimentPlan& plan,
                                         const std::vector<workloads::AppId>& apps,
                                         const std::vector<std::string>& policies,
                                         const std::vector<double>& tolerances,
                                         int repetitions, std::uint64_t seed,
                                         const BaseConfigFn& base_config);
std::vector<AppGridCells> add_grid_cells(ExperimentPlan& plan,
                                         const std::vector<workloads::AppId>& apps,
                                         const std::vector<PolicyMode>& modes,
                                         const std::vector<double>& tolerances,
                                         int repetitions, std::uint64_t seed,
                                         const BaseConfigFn& base_config);

/// Reads a finished plan back into per-app Evaluations (inverse of
/// add_grid_cells' layout).
std::vector<Evaluation> assemble_evaluations(
    const ExperimentPlan& plan, const std::vector<AppGridCells>& index,
    const std::vector<std::string>& policies,
    const std::vector<double>& tolerances);
std::vector<Evaluation> assemble_evaluations(
    const ExperimentPlan& plan, const std::vector<AppGridCells>& index,
    const std::vector<PolicyMode>& modes,
    const std::vector<double>& tolerances);

/// Prints a one-line progress note to stderr unless DUFP_QUIET is set.
void note_progress(const std::string& what);

}  // namespace dufp::harness
