#include "harness/shard_codec.h"

#include <stdexcept>

namespace dufp::harness {

namespace {

using json::Value;

Value hex(double v) { return Value::make_string(json::double_to_hex(v)); }

double unhex(const Value& v) { return json::hex_to_double(v.as_string()); }

Value encode_health(const HealthTotals& h) {
  Value o = Value::make_object();
  o.add("actuation_retries", Value::make_u64(h.actuation_retries));
  o.add("actuation_failures", Value::make_u64(h.actuation_failures));
  o.add("sample_read_failures", Value::make_u64(h.sample_read_failures));
  o.add("samples_rejected", Value::make_u64(h.samples_rejected));
  o.add("degradations", Value::make_u64(h.degradations));
  o.add("reengagements", Value::make_u64(h.reengagements));
  o.add("intervals_degraded", Value::make_u64(h.intervals_degraded));
  o.add("faults_injected", Value::make_u64(h.faults_injected));
  return o;
}

HealthTotals decode_health(const Value& v) {
  HealthTotals h;
  h.actuation_retries = v.at("actuation_retries").as_u64();
  h.actuation_failures = v.at("actuation_failures").as_u64();
  h.sample_read_failures = v.at("sample_read_failures").as_u64();
  h.samples_rejected = v.at("samples_rejected").as_u64();
  h.degradations = v.at("degradations").as_u64();
  h.reengagements = v.at("reengagements").as_u64();
  h.intervals_degraded = v.at("intervals_degraded").as_u64();
  h.faults_injected = v.at("faults_injected").as_u64();
  return h;
}

Value encode_agent_health(const core::AgentHealth& h) {
  Value o = Value::make_object();
  o.add("actuation_retries", Value::make_u64(h.actuation_retries));
  o.add("actuation_failures", Value::make_u64(h.actuation_failures));
  o.add("sample_read_failures", Value::make_u64(h.sample_read_failures));
  o.add("samples_rejected", Value::make_u64(h.samples_rejected));
  o.add("degradations", Value::make_u64(h.degradations));
  o.add("reengage_failures", Value::make_u64(h.reengage_failures));
  o.add("reengagements", Value::make_u64(h.reengagements));
  o.add("intervals_degraded", Value::make_u64(h.intervals_degraded));
  return o;
}

core::AgentHealth decode_agent_health(const Value& v) {
  core::AgentHealth h;
  h.actuation_retries = v.at("actuation_retries").as_u64();
  h.actuation_failures = v.at("actuation_failures").as_u64();
  h.sample_read_failures = v.at("sample_read_failures").as_u64();
  h.samples_rejected = v.at("samples_rejected").as_u64();
  h.degradations = v.at("degradations").as_u64();
  h.reengage_failures = v.at("reengage_failures").as_u64();
  h.reengagements = v.at("reengagements").as_u64();
  h.intervals_degraded = v.at("intervals_degraded").as_u64();
  return h;
}

Value encode_agent_stats(const core::AgentStats& a) {
  Value o = Value::make_object();
  o.add("intervals", Value::make_u64(a.intervals));
  o.add("uncore_decreases", Value::make_u64(a.uncore_decreases));
  o.add("uncore_increases", Value::make_u64(a.uncore_increases));
  o.add("uncore_resets", Value::make_u64(a.uncore_resets));
  o.add("cap_decreases", Value::make_u64(a.cap_decreases));
  o.add("cap_increases", Value::make_u64(a.cap_increases));
  o.add("cap_resets", Value::make_u64(a.cap_resets));
  o.add("cap_overshoot_resets", Value::make_u64(a.cap_overshoot_resets));
  o.add("short_term_tightenings", Value::make_u64(a.short_term_tightenings));
  o.add("uncore_reset_retries", Value::make_u64(a.uncore_reset_retries));
  o.add("pstate_pins", Value::make_u64(a.pstate_pins));
  o.add("pstate_releases", Value::make_u64(a.pstate_releases));
  o.add("health", encode_agent_health(a.health));
  return o;
}

core::AgentStats decode_agent_stats(const Value& v) {
  core::AgentStats a;
  a.intervals = v.at("intervals").as_u64();
  a.uncore_decreases = v.at("uncore_decreases").as_u64();
  a.uncore_increases = v.at("uncore_increases").as_u64();
  a.uncore_resets = v.at("uncore_resets").as_u64();
  a.cap_decreases = v.at("cap_decreases").as_u64();
  a.cap_increases = v.at("cap_increases").as_u64();
  a.cap_resets = v.at("cap_resets").as_u64();
  a.cap_overshoot_resets = v.at("cap_overshoot_resets").as_u64();
  a.short_term_tightenings = v.at("short_term_tightenings").as_u64();
  a.uncore_reset_retries = v.at("uncore_reset_retries").as_u64();
  a.pstate_pins = v.at("pstate_pins").as_u64();
  a.pstate_releases = v.at("pstate_releases").as_u64();
  a.health = decode_agent_health(v.at("health"));
  return a;
}

Value encode_metric(const telemetry::MetricSample& m) {
  Value o = Value::make_object();
  o.add("type", Value::make_i64(static_cast<int>(m.type)));
  o.add("name", Value::make_string(m.name));
  o.add("help", Value::make_string(m.help));
  Value labels = Value::make_array();
  for (const auto& [k, val] : m.labels) {
    Value pair = Value::make_array();
    pair.push_back(Value::make_string(k));
    pair.push_back(Value::make_string(val));
    labels.push_back(std::move(pair));
  }
  o.add("labels", std::move(labels));
  o.add("value", hex(m.value));
  Value bounds = Value::make_array();
  for (const double b : m.bucket_bounds) bounds.push_back(hex(b));
  o.add("bucket_bounds", std::move(bounds));
  Value counts = Value::make_array();
  for (const std::uint64_t c : m.bucket_counts) {
    counts.push_back(Value::make_u64(c));
  }
  o.add("bucket_counts", std::move(counts));
  o.add("sum", hex(m.sum));
  o.add("count", Value::make_u64(m.count));
  return o;
}

telemetry::MetricSample decode_metric(const Value& v) {
  telemetry::MetricSample m;
  const auto type = v.at("type").as_i64();
  if (type < 0 || type > static_cast<int>(telemetry::MetricType::histogram)) {
    throw std::runtime_error("shard_codec: bad metric type");
  }
  m.type = static_cast<telemetry::MetricType>(type);
  m.name = v.at("name").as_string();
  m.help = v.at("help").as_string();
  for (const Value& pair : v.at("labels").as_array()) {
    const auto& kv = pair.as_array();
    if (kv.size() != 2) throw std::runtime_error("shard_codec: bad label");
    m.labels.emplace_back(kv[0].as_string(), kv[1].as_string());
  }
  m.value = unhex(v.at("value"));
  for (const Value& b : v.at("bucket_bounds").as_array()) {
    m.bucket_bounds.push_back(unhex(b));
  }
  for (const Value& c : v.at("bucket_counts").as_array()) {
    m.bucket_counts.push_back(c.as_u64());
  }
  m.sum = unhex(v.at("sum"));
  m.count = v.at("count").as_u64();
  return m;
}

Value encode_event(const telemetry::Event& e) {
  Value o = Value::make_object();
  o.add("t_us", Value::make_i64(e.t_us));
  o.add("kind", Value::make_i64(static_cast<int>(e.kind)));
  o.add("socket", Value::make_u64(e.socket));
  o.add("code", Value::make_u64(e.code));
  o.add("a", hex(e.a));
  o.add("b", hex(e.b));
  return o;
}

telemetry::Event decode_event(const Value& v) {
  telemetry::Event e;
  e.t_us = v.at("t_us").as_i64();
  const auto kind = v.at("kind").as_i64();
  if (kind < 0 || kind >= telemetry::kEventKindCount) {
    throw std::runtime_error("shard_codec: bad event kind");
  }
  e.kind = static_cast<telemetry::EventKind>(kind);
  e.socket = static_cast<std::uint16_t>(v.at("socket").as_u64());
  e.code = static_cast<std::uint16_t>(v.at("code").as_u64());
  e.a = unhex(v.at("a"));
  e.b = unhex(v.at("b"));
  return e;
}

}  // namespace

json::Value encode_snapshot(const telemetry::TelemetrySnapshot& snap) {
  Value o = Value::make_object();
  Value metrics = Value::make_array();
  for (const auto& m : snap.metrics) metrics.push_back(encode_metric(m));
  o.add("metrics", std::move(metrics));
  Value events = Value::make_array();
  for (const auto& per_socket : snap.events) {
    Value arr = Value::make_array();
    for (const auto& e : per_socket) arr.push_back(encode_event(e));
    events.push_back(std::move(arr));
  }
  o.add("events", std::move(events));
  Value dumps = Value::make_array();
  for (const auto& d : snap.dumps) {
    Value dump = Value::make_object();
    dump.add("socket", Value::make_i64(d.socket));
    dump.add("at_us", Value::make_i64(d.at_us));
    Value arr = Value::make_array();
    for (const auto& e : d.events) arr.push_back(encode_event(e));
    dump.add("events", std::move(arr));
    dumps.push_back(std::move(dump));
  }
  o.add("dumps", std::move(dumps));
  return o;
}

telemetry::TelemetrySnapshot decode_snapshot(const json::Value& v) {
  telemetry::TelemetrySnapshot snap;
  for (const Value& m : v.at("metrics").as_array()) {
    snap.metrics.push_back(decode_metric(m));
  }
  for (const Value& per_socket : v.at("events").as_array()) {
    std::vector<telemetry::Event> events;
    for (const Value& e : per_socket.as_array()) {
      events.push_back(decode_event(e));
    }
    snap.events.push_back(std::move(events));
  }
  for (const Value& d : v.at("dumps").as_array()) {
    telemetry::FlightDump dump;
    dump.socket = static_cast<int>(d.at("socket").as_i64());
    dump.at_us = d.at("at_us").as_i64();
    for (const Value& e : d.at("events").as_array()) {
      dump.events.push_back(decode_event(e));
    }
    snap.dumps.push_back(std::move(dump));
  }
  return snap;
}

json::Value encode_run_result(const RunResult& result) {
  Value o = Value::make_object();

  Value summary = Value::make_object();
  const auto& s = result.summary;
  summary.add("exec_seconds", hex(s.exec_seconds));
  summary.add("pkg_energy_j", hex(s.pkg_energy_j));
  summary.add("dram_energy_j", hex(s.dram_energy_j));
  summary.add("avg_pkg_power_w", hex(s.avg_pkg_power_w));
  summary.add("avg_dram_power_w", hex(s.avg_dram_power_w));
  summary.add("total_gflop", hex(s.total_gflop));
  summary.add("total_gbytes", hex(s.total_gbytes));
  o.add("summary", std::move(summary));

  Value agents = Value::make_array();
  for (const auto& a : result.agent_stats) {
    agents.push_back(encode_agent_stats(a));
  }
  o.add("agent_stats", std::move(agents));

  Value faults = Value::make_array();
  for (const auto& f : result.fault_stats) {
    Value counts = Value::make_array();
    for (const std::uint64_t c : f.injected) counts.push_back(Value::make_u64(c));
    faults.push_back(std::move(counts));
  }
  o.add("fault_stats", std::move(faults));

  o.add("health", encode_health(result.health));

  // std::map iterates key-sorted, so phase order is deterministic.
  Value phases = Value::make_array();
  for (const auto& [name, t] : result.phase_totals) {
    Value p = Value::make_object();
    p.add("name", Value::make_string(name));
    p.add("wall_seconds", hex(t.wall_seconds));
    p.add("pkg_energy_j", hex(t.pkg_energy_j));
    p.add("dram_energy_j", hex(t.dram_energy_j));
    phases.push_back(std::move(p));
  }
  o.add("phase_totals", std::move(phases));

  if (result.telemetry.has_value()) {
    o.add("telemetry", encode_snapshot(*result.telemetry));
  }
  return o;
}

RunResult decode_run_result(const json::Value& v) {
  RunResult r;
  const Value& summary = v.at("summary");
  r.summary.exec_seconds = unhex(summary.at("exec_seconds"));
  r.summary.pkg_energy_j = unhex(summary.at("pkg_energy_j"));
  r.summary.dram_energy_j = unhex(summary.at("dram_energy_j"));
  r.summary.avg_pkg_power_w = unhex(summary.at("avg_pkg_power_w"));
  r.summary.avg_dram_power_w = unhex(summary.at("avg_dram_power_w"));
  r.summary.total_gflop = unhex(summary.at("total_gflop"));
  r.summary.total_gbytes = unhex(summary.at("total_gbytes"));

  for (const Value& a : v.at("agent_stats").as_array()) {
    r.agent_stats.push_back(decode_agent_stats(a));
  }
  for (const Value& f : v.at("fault_stats").as_array()) {
    const auto& counts = f.as_array();
    faults::FaultStats fs;
    if (counts.size() != fs.injected.size()) {
      throw std::runtime_error("shard_codec: fault class count mismatch");
    }
    for (std::size_t i = 0; i < counts.size(); ++i) {
      fs.injected[i] = counts[i].as_u64();
    }
    r.fault_stats.push_back(fs);
  }
  r.health = decode_health(v.at("health"));
  for (const Value& p : v.at("phase_totals").as_array()) {
    sim::PhaseTotals t;
    t.wall_seconds = unhex(p.at("wall_seconds"));
    t.pkg_energy_j = unhex(p.at("pkg_energy_j"));
    t.dram_energy_j = unhex(p.at("dram_energy_j"));
    r.phase_totals.emplace(p.at("name").as_string(), t);
  }
  if (const Value* telem = v.find("telemetry")) {
    r.telemetry = decode_snapshot(*telem);
  }
  return r;
}

}  // namespace dufp::harness
