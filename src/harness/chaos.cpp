#include "harness/chaos.h"

#include <csignal>
#include <ostream>
#include <unistd.h>

namespace dufp::harness {

namespace {

/// SplitMix64 finalizer — the same mixer job_seed uses, so chaos
/// decisions are independent streams from the same proven family.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ChaosPlan::ChaosPlan(ChaosOptions options) : options_(options) {
  // Fold the per-process identity into one salt up front; per-position
  // decisions then need a single finalizer pass.
  std::uint64_t z = options_.seed;
  z = mix64(z + 0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(options_.worker) + 1));
  z = mix64(z + 0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(options_.attempt) + 1));
  stream_ = z;
}

bool ChaosPlan::should_kill(std::uint64_t position) const {
  if (!options_.enabled()) return false;
  const std::uint64_t h =
      mix64(stream_ + 0x9e3779b97f4a7c15ULL * (position + 1));
  // Top 53 bits -> uniform double in [0, 1), the standard conversion.
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < options_.kill_rate;
}

void ChaosPlan::kill_now(std::ostream& out, std::string_view record) {
  // Tear the record: half the line, no terminating newline.  Flushing
  // pushes the bytes into the kernel so they survive the SIGKILL — the
  // file now ends exactly like a worker that lost power mid-write.
  out.write(record.data(),
            static_cast<std::streamsize>(record.size() / 2));
  out.flush();
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be caught; this point is unreachable, but keep the
  // compiler's [[noreturn]] contract honest if it ever raced delivery.
  for (;;) ::pause();
}

void ChaosPlan::maybe_kill(std::uint64_t position, std::ostream& out,
                           std::string_view record) const {
  if (should_kill(position)) kill_now(out, record);
}

}  // namespace dufp::harness
