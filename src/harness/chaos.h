// Deterministic process-level chaos injection for shard workers.
//
// PR 2's fault plan injects failures *below* the agent (flaky MSRs,
// broken counters); this layer injects failures *around* the worker
// process itself: a seeded plan decides, per emitted result record,
// whether the worker self-SIGKILLs — tearing the record mid-line first,
// so the crash leaves exactly the kind of truncated shard file the
// salvage path (gather --partial) must recover from.
//
// Determinism contract: whether the process dies at emission position p
// is a pure function of (seed, worker, attempt, p) — never of pid,
// wall-clock, or global RNG state — so a chaos run is replayable and a
// test can pin "worker 0, attempt 0 dies at record 3" forever.  Which
// *jobs* occupy those positions can vary in dynamic mode (claim races),
// but the recovery machinery (leases + salvage + resume) guarantees the
// final gathered bytes do not.
//
// Env protocol (BenchOptions::from_env, aggregated validation like
// DUFP_FAULT_RATE):
//
//   DUFP_CHAOS=R         per-record self-SIGKILL probability in [0, 1]
//   DUFP_CHAOS_SEED=S    seed of the kill-decision stream (default 0)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace dufp::harness {

struct ChaosOptions {
  /// Per-record probability of self-SIGKILL; 0 disables chaos entirely.
  double kill_rate = 0.0;
  /// Seed of the decision stream (DUFP_CHAOS_SEED).
  std::uint64_t seed = 0;
  /// Stable per-process salts.  Deliberately NOT the pid: a restarted
  /// worker must derive a *different* but *reproducible* kill schedule,
  /// so the supervisor salts with (worker slot, attempt number).
  int worker = 0;
  int attempt = 0;

  bool enabled() const { return kill_rate > 0.0; }
};

/// The seeded kill plan of one worker process.
class ChaosPlan {
 public:
  explicit ChaosPlan(ChaosOptions options);

  bool enabled() const { return options_.enabled(); }

  /// True iff this process dies at emission position `position` (the
  /// count of result records it has emitted so far).  Pure function of
  /// (options, position).
  bool should_kill(std::uint64_t position) const;

  /// The chaos death: writes the first half of `record` (no newline) to
  /// `out`, flushes so the torn bytes actually reach the file, then
  /// raises SIGKILL — no destructors, no atexit, exactly what a node
  /// power-loss does to a worker.  Never returns.
  [[noreturn]] static void kill_now(std::ostream& out,
                                    std::string_view record);

  /// should_kill(position) ? kill_now(out, record) : no-op.  The single
  /// hook run_shard calls per record.
  void maybe_kill(std::uint64_t position, std::ostream& out,
                  std::string_view record) const;

 private:
  ChaosOptions options_;
  std::uint64_t stream_;  ///< pre-mixed (seed, worker, attempt) salt
};

}  // namespace dufp::harness
