// Fault-tolerant supervision of local shard workers.
//
// PR 5's sharding assumed every worker runs to completion: one SIGKILL
// mid-grid and the run was unrecoverable.  The ShardSupervisor lifts the
// agent-watchdog discipline from PR 2 (bounded retries, exponential
// backoff, fail-open) to the process layer: it forks N dynamic-mode
// workers over one claim directory, reaps them, classifies every exit,
// restarts crashed workers with backoff, enforces per-worker deadlines,
// and quarantines a chunk that kills its worker twice (a "poison job")
// so one bad input cannot take the whole fleet down.
//
// Recovery composition (see DESIGN.md §7d):
//   - a worker the supervisor reaps has its leases released *immediately*
//     (we know it is dead — no need to wait out the TTL);
//   - a worker nobody supervises (another machine, pulled power cord) is
//     covered by the lease TTL + steal protocol in FileChunkClaimer;
//   - whatever is still missing after supervision (restart budget
//     exhausted, poisoned chunks) is exactly what `gather --partial`
//     reports and a retry manifest re-runs.
//
// Every worker writes to `<out_dir>/w<slot>.a<attempt>.jsonl.partial`
// and atomically renames to `.jsonl` on success, so a visible `.jsonl`
// is always complete and a `.partial` is honestly labeled salvage input.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/chaos.h"
#include "harness/shard.h"

namespace dufp::harness {

/// Exit classification of one worker attempt.
enum class WorkerExitClass {
  clean,      ///< exit 0: ran out of claimable chunks
  retryable,  ///< killed by a signal, I/O error, or job failure: respawn
  fatal,      ///< usage / spec mismatch: restarting cannot help
};

const char* to_string(WorkerExitClass c);

struct SupervisorOptions {
  int workers = 2;      ///< concurrent worker slots
  int threads = 1;      ///< in-process threads per worker
  int chunk_size = 1;   ///< dynamic chunk size (supervised mode is dynamic)
  std::string out_dir;  ///< claim dir + worker output files; must exist

  double lease_ttl_seconds = 30.0;  ///< forwarded to every worker's claimer
  int max_restarts = 2;             ///< per worker slot, beyond attempt 0
  double backoff_base_seconds = 0.05;  ///< restart delay, doubled per attempt
  double backoff_max_seconds = 1.0;
  double worker_deadline_seconds = 0.0;  ///< > 0: SIGKILL a slower worker

  /// Blame threshold: a chunk whose lease was held by a dying worker
  /// this many times is quarantined (a `.poison` marker no claimer will
  /// touch) and reported instead of endlessly re-killing workers.
  int poison_threshold = 2;

  ChaosOptions chaos;  ///< seeded self-SIGKILL injection (worker/attempt
                       ///< salts are filled in per spawn)

  /// Resume mode: restrict the run to these job indices (see
  /// ShardRunOptions::job_filter).  Must outlive the call.
  const std::vector<std::size_t>* job_filter = nullptr;

  bool quiet = true;  ///< false: progress notes on stderr

  /// Test seam: when set, the forked child runs this instead of a shard
  /// worker and its return value is the exit code.  The production path
  /// never sets it.
  std::function<int(int worker, int attempt)> child_override;
};

/// What the supervisor runs, independent of the payload kind: the size
/// of the job universe (for chunk accounting) and the worker body that
/// executes one attempt's share and streams its wire file.  The grid
/// path wraps run_shard here; src/fleet wraps its node runner — both
/// get the identical fork/reap/restart/poison machinery.
struct SupervisedWork {
  /// Full job count of the underlying plan (before any job_filter).
  std::size_t job_count = 0;

  /// Runs one worker attempt's share to `out`.  Runs inside the forked
  /// child; a ShardFormatError maps to the spec-mismatch exit code
  /// (fatal), any other exception to the job-failure code (retryable).
  std::function<void(const ShardRunOptions&, std::ostream&)> run;
};

/// One reaped worker attempt, in reap order.
struct WorkerAttempt {
  int worker = 0;
  int attempt = 0;
  int exit_code = -1;  ///< -1 when killed by a signal
  int signal = 0;      ///< 0 when exited normally
  bool deadline_killed = false;
  WorkerExitClass exit_class = WorkerExitClass::retryable;
  std::string output_file;  ///< the path this attempt wrote (or partially)
};

struct SupervisorReport {
  std::vector<WorkerAttempt> attempts;
  int restarts = 0;        ///< respawns performed (attempts beyond first)
  int deadline_kills = 0;  ///< workers SIGKILLed for exceeding the deadline
  int leases_released = 0; ///< dead workers' leases reap-released
  std::vector<int> poisoned_chunks;  ///< quarantined this run (sorted)
  bool fatal = false;      ///< a worker hit a non-retryable config error

  /// Every output file that exists after supervision: completed
  /// `.jsonl` finals plus crashed attempts' `.jsonl.partial` leftovers —
  /// exactly the input set for `gather --partial`.
  std::vector<std::string> output_files;

  /// True when every chunk carries a done marker (the grid completed
  /// under supervision; a strict gather should succeed).
  bool all_chunks_done = false;
};

/// Runs `work` to completion (or restart exhaustion) under supervision.
/// Throws std::invalid_argument on malformed options and
/// std::runtime_error on fork/filesystem failures; worker failures are
/// reported, never thrown.
SupervisorReport supervise_work(const SupervisedWork& work,
                                const SupervisorOptions& options);

/// supervise_work bound to an experiment grid (run_shard as the worker
/// body).
SupervisorReport supervise_shard_run(const GridSpec& spec,
                                     const SupervisorOptions& options);

}  // namespace dufp::harness
