// The payload-agnostic half of the sharded execution layer: everything
// about streaming versioned JSONL shard files, claiming chunks through
// leases, and gathering records back exactly-once is independent of
// *what* a job computes.  This header owns that machinery; harness/shard.h
// binds it to experiment grids (GridSpec/RunResult) and src/fleet binds
// it to fleet node simulations — both speak the identical wire dialect
// (same header keys, same error surface, same duplicate/determinism
// guarantees), so operational tooling works on either kind of file.
//
// A wire file is:
//   - one header line: {"format":...,"version":...,"spec_name":...,
//     "spec_fingerprint":...,"shard":...,"shards":...,"job_count":...}
//   - one line per job: {"job":i,"result":{...}} with every double as its
//     IEEE-754 bit pattern (see harness/shard_codec.h)
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.h"
#include "harness/chaos.h"

namespace dufp::harness {

/// One wire version across every payload kind; bump on any change.
inline constexpr int kShardFormatVersion = 1;

/// Wire/format-contract violations: a file or document that is not what
/// the operation was told it is (wrong format, unsupported version,
/// fingerprint mismatch, invalid spec).  Distinguished from plain
/// std::runtime_error so the CLI can exit with its documented
/// spec-mismatch code.
class ShardFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Claims chunks of the job list for dynamic load balancing.  try_claim
/// must return true for at most one *live* owner per chunk across every
/// cooperating worker (workers may race); the lease hooks below let a
/// claimer recover chunks whose owner died.
class ChunkClaimer {
 public:
  virtual ~ChunkClaimer() = default;
  virtual bool try_claim(int chunk) = 0;

  /// Heartbeats every lease this claimer holds; called between result
  /// records so a long grid never looks dead.  No-op by default.
  virtual void renew() {}

  /// True while this claimer still owns `chunk`'s lease.  A worker that
  /// was stalled past the TTL may have had its lease stolen; it must
  /// check before emitting the chunk's records (the thief re-runs them).
  virtual bool still_owner(int /*chunk*/) { return true; }

  /// Marks `chunk` finished (its records are durably emitted) and
  /// releases the lease.  Returns false — and records nothing — when
  /// ownership was lost, so a stale worker can never clobber the
  /// thief's in-flight claim.  Completion records are idempotent:
  /// completing an already-completed chunk is a no-op.
  virtual bool complete(int chunk) {
    (void)chunk;
    return true;
  }
};

/// Lease policy of a FileChunkClaimer.
struct LeaseOptions {
  /// Unique id of this claimer (one per worker attempt).  Empty derives
  /// "pid<pid>" — fine for ad-hoc runs; supervisors pass stable ids so
  /// crash blame and chaos schedules are reproducible.
  std::string owner;

  /// A lease whose heartbeat is older than this is considered orphaned
  /// and may be stolen.  <= 0 disables stealing entirely (the PR-5
  /// permanent-claim behavior).
  double ttl_seconds = 30.0;
};

/// File-based lease claimer.  Chunk k's lease is `<dir>/chunk<k>.claim`,
/// created with O_CREAT|O_EXCL (POSIX-atomic, so concurrent workers
/// never double-claim) and carrying `owner=<id>` plus a monotonically
/// increasing heartbeat counter.  The owner keeps the fd open; renew()
/// rewrites the record in place, bumping both the counter and the file
/// mtime — the mtime is the cross-process staleness signal (any shared
/// filesystem dynamic mode already requires).
///
/// Steal protocol (at-most-one live owner, no locks):
///   1. A claimer finding an existing lease older than the TTL renames
///      it to a unique `.stale.<owner>.<n>` name.  rename(2) is atomic:
///      of any number of racing stealers, exactly one wins (the rest see
///      ENOENT) — the loser retries from the top.
///   2. The winner unlinks the stale lease and falls back to the normal
///      O_CREAT|O_EXCL create, which it may still lose to a fresh
///      claimer — ownership is only ever granted by winning the create.
///   3. The previous owner, if merely stalled rather than dead, detects
///      the theft by inode comparison (still_owner) and drops its
///      now-duplicate output instead of emitting it.
///
/// Completed chunks are recorded as `chunk<k>.done` markers (idempotent:
/// creating an existing marker is a no-op) and never reclaimable;
/// quarantined chunks as `chunk<k>.poison` (see ShardSupervisor), which
/// try_claim refuses so a job that kills its workers cannot take the
/// whole fleet down with it.
class FileChunkClaimer final : public ChunkClaimer {
 public:
  /// `dir` must exist and be shared by every cooperating worker.
  explicit FileChunkClaimer(std::string dir, LeaseOptions lease = {});
  ~FileChunkClaimer() override;  // closes fds; leases stay on disk

  bool try_claim(int chunk) override;
  void renew() override;
  bool still_owner(int chunk) override;
  bool complete(int chunk) override;

  /// Unlinks every lease this claimer still owns (clean handoff without
  /// completion, e.g. a worker told to shut down).  Stolen or completed
  /// chunks are skipped.
  void release_all();

  const std::string& owner() const { return owner_; }

  /// Chunks this claimer refused because a poison marker quarantines
  /// them (their jobs must be reported, not silently skipped).
  const std::vector<int>& poisoned_seen() const { return poisoned_seen_; }

  // Marker-file paths, shared with the supervisor and tests.
  static std::string claim_path(const std::string& dir, int chunk);
  static std::string done_path(const std::string& dir, int chunk);
  static std::string poison_path(const std::string& dir, int chunk);

  /// The lease record at `path`, if one can be read.
  struct LeaseInfo {
    std::string owner;
    std::uint64_t heartbeat = 0;
  };
  static std::optional<LeaseInfo> read_lease(const std::string& path);

 private:
  std::string dir_;
  std::string owner_;
  double ttl_seconds_;
  std::map<int, int> held_;  ///< chunk -> open lease fd
  int steal_seq_ = 0;        ///< uniquifies this claimer's steal renames
  std::uint64_t heartbeat_ = 0;
  std::vector<int> poisoned_seen_;
};

struct ShardRunOptions {
  int shard = 0;   ///< this worker's id in [0, shards)
  int shards = 1;  ///< total workers
  int threads = 1; ///< in-process thread pool width (DUFP_THREADS-style)

  /// > 0 switches from static round-robin to dynamic chunk claiming:
  /// the job list is cut into chunks of this size and workers claim
  /// chunks through `claimer` until none remain.  `shard`/`shards` then
  /// only label the output file.
  int chunk_size = 0;
  ChunkClaimer* claimer = nullptr;  ///< required when chunk_size > 0

  /// Resume mode: restrict this run to exactly these job indices (a
  /// retry manifest's missing list).  Static assignment round-robins
  /// over the list; dynamic mode cuts its chunks from it.  nullptr runs
  /// the whole plan.  Indices must be valid and strictly ascending.
  const std::vector<std::size_t>* job_filter = nullptr;

  /// Seeded self-SIGKILL injection (DUFP_CHAOS); kill_rate 0 = off.
  ChaosOptions chaos;
};

/// What identifies one shardable workload on the wire, independent of
/// its payload type.  Both sides of the wire derive one of these from
/// their spec: the runner stamps it into the header, the gatherer
/// rejects files whose header disagrees.
struct WireIdentity {
  std::string format;           ///< e.g. "dufp-shard-result"
  std::string spec_name;
  std::string fingerprint_hex;  ///< %016llx of the spec's fingerprint
  std::size_t job_count = 0;

  /// Optional human attribution of a job index ("rack 1 / node 3"),
  /// appended to missing-job error messages so operators see *what*
  /// is absent, not just which index.  nullptr keeps the bare ids.
  std::function<std::string(std::size_t)> job_label;
};

/// Runs this worker's share of the jobs and streams the versioned JSONL
/// (header line + one line per job) to `out`.  `run` executes a batch of
/// job indices and returns one encoded payload per index, in order —
/// everything else (static/dynamic assignment, resume filters, lease
/// renewal, chaos injection, crash-safe flushing) lives here.
void run_shard_wire(
    const WireIdentity& id, const ShardRunOptions& options,
    const std::function<std::vector<json::Value>(
        const std::vector<std::size_t>&)>& run,
    std::ostream& out);

struct GatherOptions {
  /// Salvage mode: tolerate damaged input — truncated or corrupt lines
  /// are skipped (each noted with file:line), unreadable files are
  /// skipped whole, byte-identical duplicate records are dropped as
  /// idempotent re-deliveries (a reclaimed chunk legitimately re-emits
  /// its jobs) — and report what is missing instead of throwing.
  /// Duplicates whose bytes *differ* still throw in every mode: two
  /// different results for one job is a determinism violation, never
  /// damage.
  bool partial = false;
};

/// One piece of damage tolerated (partial mode) in an input file.
struct GatherNote {
  std::string file;
  int line = 0;  ///< 1-based; 0 = whole-file problem
  std::string what;
};

/// Everything a payload-agnostic gather pass learned; the payload-typed
/// results live with the caller (its `store` callback received them).
struct WireGatherReport {
  std::size_t job_count = 0;
  std::vector<bool> have;
  std::vector<std::size_t> missing;  ///< sorted ascending
  std::size_t records = 0;           ///< complete records decoded
  std::size_t duplicates = 0;        ///< idempotent re-deliveries dropped
  std::vector<GatherNote> notes;     ///< damage tolerated (partial mode)
  int header_shards = 0;  ///< max `shards` over the headers (0 = none)

  bool complete() const { return missing.empty(); }
};

/// Reads wire JSONL files back, validating headers against `id` and
/// demanding every job exactly once across the input set.  `store` is
/// called once per fresh record with the job index and its "result"
/// value; it decodes and keeps the payload (a throw is treated exactly
/// like an undecodable record).  Strict mode throws at the first
/// problem; partial mode salvages (see GatherOptions).
WireGatherReport gather_wire(
    const WireIdentity& id, const std::vector<std::string>& files,
    const GatherOptions& options,
    const std::function<void(std::size_t, const json::Value&)>& store);

}  // namespace dufp::harness
