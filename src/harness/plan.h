// The parallel experiment engine's job-based API.
//
// An ExperimentPlan enumerates every (config, seed) job of an experiment
// up front — each *cell* (one RunConfig) expands into one job per
// repetition — then executes the whole job set across a fixed ThreadPool
// and reassembles per-cell RepeatedResults in deterministic job order.
//
// Determinism guarantee (serial ≡ parallel): a job's seed is a pure
// function of its cell's base seed and its repetition index (see
// job_seed), every job runs a fully self-contained simulation, and
// aggregation consumes results indexed by job id, never by completion
// order.  Running a plan with 1 thread or N threads therefore produces
// bit-identical RepeatedResult / Evaluation values — covered by tier-1
// tests.
//
// run_repeated / evaluate_app are thin wrappers over this class; new
// callers (sweeps, ablations, multi-machine studies) can schedule
// arbitrary job sets through the same API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.h"

namespace dufp::harness {

/// Derives the seed of repetition `repetition` from a cell's base seed —
/// a SplitMix64 finalizer over the job identity, the same scheme
/// Rng::fork uses for sub-component streams.  Pure function: any
/// execution order or thread count derives identical seeds.
std::uint64_t job_seed(std::uint64_t base_seed, int repetition);

class ExperimentPlan {
 public:
  /// Identifies a cell within this plan (dense, starting at 0).
  using CellId = std::size_t;

  /// Adds one cell: `repetitions` jobs with seeds derived from
  /// config.seed.  Validates the config and throws std::invalid_argument
  /// listing every problem.  `label` (optional) names the cell in
  /// progress notes.
  CellId add_cell(RunConfig config, int repetitions,
                  std::string label = "");

  std::size_t cell_count() const { return cells_.size(); }
  std::size_t job_count() const { return jobs_.size(); }

  /// Executes every job across `threads` pool workers (<= 1 runs inline
  /// on the calling thread; the thread count never changes the results).
  /// A plan runs once; calling run() again is a no-op.
  void run(int threads);

  /// run() with threads from DUFP_THREADS (BenchOptions::from_env()).
  void run();

  bool finished() const { return finished_; }

  /// Aggregated result of a cell, in the paper's trimmed-summary
  /// protocol.  Throws std::logic_error before run().
  const RepeatedResult& result(CellId cell) const;

 private:
  struct Cell {
    RunConfig config;
    int repetitions = 0;
    std::string label;
    RepeatedResult result;
  };
  struct Job {
    CellId cell = 0;
    int repetition = 0;
  };

  std::vector<Cell> cells_;
  std::vector<Job> jobs_;
  bool finished_ = false;
};

}  // namespace dufp::harness
