// The parallel experiment engine's job-based API.
//
// An ExperimentPlan enumerates every (config, seed) job of an experiment
// up front — each *cell* (one RunConfig) expands into one job per
// repetition — then executes the whole job set across a fixed ThreadPool
// and reassembles per-cell RepeatedResults in deterministic job order.
//
// Determinism guarantee (serial ≡ parallel): a job's seed is a pure
// function of its cell's base seed and its repetition index (see
// job_seed), every job runs a fully self-contained simulation, and
// aggregation consumes results indexed by job id, never by completion
// order.  Running a plan with 1 thread or N threads therefore produces
// bit-identical RepeatedResult / Evaluation values — covered by tier-1
// tests.
//
// run_repeated / evaluate_app are thin wrappers over this class; new
// callers (sweeps, ablations, multi-machine studies) can schedule
// arbitrary job sets through the same API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.h"

namespace dufp::harness {

/// Derives the seed of repetition `repetition` from a cell's base seed —
/// a SplitMix64 finalizer over the job identity, the same scheme
/// Rng::fork uses for sub-component streams.  Pure function: any
/// execution order or thread count derives identical seeds.
std::uint64_t job_seed(std::uint64_t base_seed, int repetition);

class ExperimentPlan {
 public:
  /// Identifies a cell within this plan (dense, starting at 0).
  using CellId = std::size_t;

  /// Identifies one job within this plan.
  ///
  /// Enumeration-order CONTRACT (load-bearing: shard assignment and the
  /// gather merge both key on job indices): jobs are enumerated
  /// cell-major in add_cell order, repetition-minor — cell 0's
  /// repetitions 0..R0-1 occupy job indices 0..R0-1, then cell 1's, and
  /// so on.  Any process that builds the same plan (same add_cell
  /// sequence, same repetitions) derives the identical job list, so a
  /// job index is a portable job identity.  Asserted by tier-1 tests
  /// (plan_test.cpp) — change it only with a shard-format version bump.
  struct JobRef {
    CellId cell = 0;
    int repetition = 0;
  };

  /// Adds one cell: `repetitions` jobs with seeds derived from
  /// config.seed.  Validates the config and throws std::invalid_argument
  /// listing every problem.  `label` (optional) names the cell in
  /// progress notes.
  CellId add_cell(RunConfig config, int repetitions,
                  std::string label = "");

  std::size_t cell_count() const { return cells_.size(); }
  std::size_t job_count() const { return jobs_.size(); }

  /// The (cell, repetition) identity of job `i` (see the JobRef
  /// contract above).
  JobRef job(std::size_t i) const { return jobs_.at(i); }

  /// The fully derived config job `i` runs: the cell's config with the
  /// repetition's job_seed applied.  This is the *only* seed derivation
  /// in the engine — shard workers call this, so a job's config is a
  /// pure function of (plan, index), independent of placement.
  RunConfig job_config(std::size_t i) const;

  /// Executes the given jobs (indices into the enumeration) across
  /// `threads` pool workers (<= 1 runs inline) and returns their results
  /// in the order of `indices` — never in completion order.  Const: the
  /// plan itself is not advanced, so shard workers can execute disjoint
  /// slices of the same plan in different processes.
  std::vector<RunResult> run_jobs(const std::vector<std::size_t>& indices,
                                  int threads) const;

  /// Completes the plan from externally executed per-job results
  /// (results[i] must be job i's result, e.g. a gathered shard merge)
  /// and aggregates each cell's RepeatedResult.  Throws
  /// std::invalid_argument on a size mismatch.
  void finish_with(std::vector<RunResult> results);

  /// Executes every job across `threads` pool workers and aggregates —
  /// exactly run_jobs over all indices + finish_with, so a serial run
  /// and a gathered shard run are identical by construction.  A plan
  /// runs once; calling run() again is a no-op.
  void run(int threads);

  /// run() with threads from DUFP_THREADS (BenchOptions::from_env()).
  void run();

  bool finished() const { return finished_; }

  /// Aggregated result of a cell, in the paper's trimmed-summary
  /// protocol.  Throws std::logic_error before run().
  const RepeatedResult& result(CellId cell) const;

 private:
  struct Cell {
    RunConfig config;
    int repetitions = 0;
    std::string label;
    RepeatedResult result;
  };

  std::vector<Cell> cells_;
  std::vector<JobRef> jobs_;
  bool finished_ = false;
};

}  // namespace dufp::harness
