#include "harness/runner.h"

#include <algorithm>
#include <stdexcept>

#include "common/expect.h"
#include "core/policy_registry.h"
#include "harness/options.h"
#include "sim/multi_sim.h"
#include "faults/faulty_counter_source.h"
#include "faults/faulty_msr.h"
#include "perfmon/sim_counter_source.h"
#include "powercap/uncore_control.h"
#include "powercap/zone.h"

namespace dufp::harness {

double percent_over(double value, double base) {
  DUFP_EXPECT(base > 0.0);
  return (value / base - 1.0) * 100.0;
}

std::string RunConfig::resolved_policy() const {
  if (!policy_name.empty()) {
    const auto* entry = core::PolicyRegistry::instance().find(policy_name);
    return entry != nullptr ? entry->name : policy_name;
  }
  return mode == PolicyMode::none ? std::string() : core::to_string(mode);
}

std::vector<std::string> RunConfig::validate() const {
  std::vector<std::string> problems;
  if (profile == nullptr) {
    problems.push_back("profile is required");
  }
  if (!policy_name.empty()) {
    if (!core::PolicyRegistry::instance().contains(policy_name)) {
      problems.push_back(
          "policy_name is unknown: \"" + policy_name + "\" (known: " +
          core::PolicyRegistry::instance().known_names() + ")");
    }
    if (mode != PolicyMode::none) {
      problems.push_back(
          "policy_name and mode are both set; pick one selector");
    }
  }
  if (tolerated_slowdown < 0.0 || tolerated_slowdown > 1.0) {
    problems.push_back("tolerated_slowdown must be in [0, 1]");
  }
  if (machine.sockets < 1) {
    problems.push_back("machine.sockets must be >= 1");
  }
  if (policy.interval.micros() <= 0) {
    problems.push_back("policy.interval must be positive");
  }
  if (sim.tick.micros() <= 0) {
    problems.push_back("sim.tick must be positive");
  }
  if (sim.max_seconds <= 0.0) {
    problems.push_back("sim.max_seconds must be positive");
  }
  if (sampler_noise_sigma < 0.0) {
    problems.push_back("sampler_noise_sigma must be non-negative");
  }
  if (static_cap_w.has_value() && *static_cap_w <= 0.0) {
    problems.push_back("static_cap_w must be positive");
  }
  if (phase_cap.has_value()) {
    if (phase_cap->cap_w <= 0.0) {
      problems.push_back("phase_cap.cap_w must be positive");
    }
    if (profile != nullptr) {
      bool found = false;
      for (const auto& p : profile->phases()) {
        if (p.name == phase_cap->phase) found = true;
      }
      if (!found) {
        problems.push_back("phase_cap names a phase the profile lacks: \"" +
                           phase_cap->phase + "\"");
      }
    }
  }
  if (policy.max_actuation_attempts < 1) {
    problems.push_back("policy.max_actuation_attempts must be >= 1");
  }
  if (policy.watchdog_failure_threshold < 1) {
    problems.push_back("policy.watchdog_failure_threshold must be >= 1");
  }
  if (policy.watchdog_backoff_intervals < 1) {
    problems.push_back("policy.watchdog_backoff_intervals must be >= 1");
  }
  if (policy.watchdog_backoff_max_intervals <
      policy.watchdog_backoff_intervals) {
    problems.push_back(
        "policy.watchdog_backoff_max_intervals must be >= "
        "policy.watchdog_backoff_intervals");
  }
  for (const auto& p : faults.validate()) {
    problems.push_back("faults." + p);
  }
  if (telemetry.enabled) {  // disabled = nothing constructed, nothing checked
    for (const auto& p : telemetry.validate()) {
      problems.push_back("telemetry." + p);
    }
  }
  return problems;
}

void HealthTotals::add(const core::AgentHealth& h) {
  actuation_retries += h.actuation_retries;
  actuation_failures += h.actuation_failures;
  sample_read_failures += h.sample_read_failures;
  samples_rejected += h.samples_rejected;
  degradations += h.degradations;
  reengagements += h.reengagements;
  intervals_degraded += h.intervals_degraded;
}

void HealthTotals::add(const HealthTotals& other) {
  actuation_retries += other.actuation_retries;
  actuation_failures += other.actuation_failures;
  sample_read_failures += other.sample_read_failures;
  samples_rejected += other.samples_rejected;
  degradations += other.degradations;
  reengagements += other.reengagements;
  intervals_degraded += other.intervals_degraded;
  faults_injected += other.faults_injected;
}

namespace {

void throw_on_invalid(const RunConfig& config) {
  const auto problems = config.validate();
  if (problems.empty()) return;
  std::string msg = "RunConfig:";
  for (std::size_t i = 0; i < problems.size(); ++i) {
    msg += (i == 0 ? " " : "; ") + problems[i];
  }
  throw std::invalid_argument(msg);
}

}  // namespace

/// Everything owned by one run: built, wired, driven, then discarded.
struct PreparedRun::Impl {
  RunConfig config;  ///< kept for finish() (profile pointer stays live)
  std::unique_ptr<sim::Simulation> simulation;
  std::unique_ptr<telemetry::Telemetry> telemetry;
  std::vector<std::unique_ptr<faults::FaultPlan>> plans;
  std::vector<std::unique_ptr<faults::FaultyMsrDevice>> fdevs;
  std::vector<std::unique_ptr<faults::FaultyCounterSource>> fsrcs;
  std::vector<std::unique_ptr<powercap::PackageZone>> zones;
  std::vector<std::unique_ptr<powercap::UncoreControl>> uncores;
  std::vector<std::unique_ptr<powercap::PstateControl>> pstates;
  std::vector<std::unique_ptr<perfmon::SimCounterSource>> sources;
  std::vector<std::unique_ptr<core::Agent>> agents;
  bool finished = false;
};

PreparedRun::PreparedRun(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
PreparedRun::PreparedRun(PreparedRun&&) noexcept = default;
PreparedRun& PreparedRun::operator=(PreparedRun&&) noexcept = default;
PreparedRun::~PreparedRun() = default;

sim::Simulation& PreparedRun::simulation() {
  DUFP_EXPECT(impl_ != nullptr);
  return *impl_->simulation;
}

PreparedRun prepare_run(const RunConfig& config) {
  throw_on_invalid(config);

  auto impl = std::make_unique<PreparedRun::Impl>();
  impl->config = config;
  PreparedRun::Impl& ctx = *impl;
  sim::SimulationOptions sim_opts = config.sim;
  sim_opts.seed = config.seed;
  ctx.simulation = std::make_unique<sim::Simulation>(
      config.machine, *config.profile, sim_opts);
  sim::Simulation& s = *ctx.simulation;
  s.set_trace_sink(config.trace);

  const int n = s.socket_count();
  const bool inject = config.faults.enabled;
  const bool telem_on = config.telemetry.enabled;
  if (telem_on) {
    ctx.telemetry =
        std::make_unique<telemetry::Telemetry>(config.telemetry, n);
    // record_now() (fault decorators) stamps with the simulation clock.
    ctx.telemetry->set_clock([&s] { return s.now(); });
  }
  auto socket_telem = [&](int i) -> telemetry::SocketTelemetry* {
    return telem_on ? &ctx.telemetry->socket(i) : nullptr;
  };
  for (int i = 0; i < n; ++i) {
    msr::MsrDevice* dev = &s.msr(i);
    if (inject) {
      // Per-socket decision stream: the fault seed owns the stream family,
      // the run seed and socket index select the member, so repetitions
      // and sockets see different storms that are still bit-reproducible.
      Rng base(config.faults.seed);
      Rng per_run = base.fork(config.seed);
      ctx.plans.push_back(std::make_unique<faults::FaultPlan>(
          config.faults, per_run.fork(static_cast<std::uint64_t>(i))));
      ctx.plans.back()->set_telemetry(socket_telem(i));
      ctx.fdevs.push_back(std::make_unique<faults::FaultyMsrDevice>(
          s.msr(i), *ctx.plans.back()));
      dev = ctx.fdevs.back().get();  // still disarmed: wiring reads clean
    }
    ctx.zones.push_back(std::make_unique<powercap::PackageZone>(*dev, i));
    ctx.uncores.push_back(std::make_unique<powercap::UncoreControl>(*dev));
    ctx.sources.push_back(
        std::make_unique<perfmon::SimCounterSource>(s.socket(i), *dev));
    if (inject) {
      ctx.fsrcs.push_back(std::make_unique<faults::FaultyCounterSource>(
          *ctx.sources.back(), *ctx.plans.back()));
    }
  }

  // Static whole-run cap (Fig. 1a): programmed before the run, both
  // constraints to the same value, like the paper's motivation setup.
  if (config.static_cap_w.has_value()) {
    for (int i = 0; i < n; ++i) {
      ctx.zones[static_cast<std::size_t>(i)]->set_power_limit_w(
          powercap::ConstraintId::long_term, *config.static_cap_w);
      ctx.zones[static_cast<std::size_t>(i)]->set_power_limit_w(
          powercap::ConstraintId::short_term, *config.static_cap_w);
    }
  }

  // Partial capping of one phase (Fig. 1b/1c).
  if (config.phase_cap.has_value()) {
    const double cap = config.phase_cap->cap_w;
    // Resolve the target phase name to its interned index once, at the
    // edge; the listener then runs a plain integer compare per event.
    const std::size_t target_idx =
        config.profile->phase_index(config.phase_cap->phase);
    std::vector<double> def_long(static_cast<std::size_t>(n));
    std::vector<double> def_short(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      def_long[static_cast<std::size_t>(i)] =
          ctx.zones[static_cast<std::size_t>(i)]->power_limit_w(
              powercap::ConstraintId::long_term);
      def_short[static_cast<std::size_t>(i)] =
          ctx.zones[static_cast<std::size_t>(i)]->power_limit_w(
              powercap::ConstraintId::short_term);
    }
    // The listener captures the zone pointers by reference into the
    // context, which outlives the simulation loop.  It touches only the
    // socket it is called for, which is exactly the confinement the
    // socket-parallel engine requires of listeners.
    auto& zones = ctx.zones;
    s.add_phase_listener([target_idx, cap, def_long, def_short, &zones](
                             int socket, std::size_t phase_idx,
                             bool entered) {
      if (phase_idx != target_idx) return;
      auto& z = *zones[static_cast<std::size_t>(socket)];
      // Best effort under fault injection: a phase-boundary write that
      // faults is dropped (the experiment's cap is late or missing for
      // that visit) rather than crashing the run.
      try {
        if (entered) {
          z.set_power_limit_w(powercap::ConstraintId::long_term, cap);
          z.set_power_limit_w(powercap::ConstraintId::short_term, cap);
        } else {
          z.set_power_limit_w(powercap::ConstraintId::long_term,
                              def_long[static_cast<std::size_t>(socket)]);
          z.set_power_limit_w(powercap::ConstraintId::short_term,
                              def_short[static_cast<std::size_t>(socket)]);
        }
      } catch (const msr::MsrError&) {
      }
    });
  }

  // Controllers: one agent per socket, policy resolved by registry name.
  const std::string policy_name = config.resolved_policy();
  if (!policy_name.empty()) {
    core::PolicyConfig policy = config.policy;
    policy.tolerated_slowdown = config.tolerated_slowdown;
    // Per-policy overrides (e.g. DUFP-F forcing manage_core_frequency)
    // must land before the pstate wiring below reads the flag; the Agent
    // re-applies them, which is idempotent.
    policy = core::PolicyRegistry::instance().apply_config_defaults(
        policy_name, policy);
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const perfmon::CounterSource& source =
          inject ? static_cast<const perfmon::CounterSource&>(*ctx.fsrcs[idx])
                 : *ctx.sources[idx];
      perfmon::SamplerOptions so;
      so.noise_sigma = config.sampler_noise_sigma;
      perfmon::IntervalSampler sampler(
          source, config.machine.socket.core_base_mhz,
          s.fork_rng(0x2000 + static_cast<std::uint64_t>(i)), so);
      powercap::PstateControl* pstate = nullptr;
      if (policy.manage_core_frequency) {
        ctx.pstates.push_back(std::make_unique<powercap::PstateControl>(
            inject ? static_cast<msr::MsrDevice&>(*ctx.fdevs[idx])
                   : s.msr(i)));
        pstate = ctx.pstates.back().get();
      }
      ctx.agents.push_back(std::make_unique<core::Agent>(
          policy_name, policy, *ctx.zones[static_cast<std::size_t>(i)],
          *ctx.uncores[static_cast<std::size_t>(i)], std::move(sampler),
          pstate, socket_telem(i)));
      core::Agent* agent = ctx.agents.back().get();
      s.schedule_periodic(policy.interval,
                          [agent](SimTime now) { agent->on_interval(now); });
    }
  }

  // Only now arm the injectors: construction-time reads must see clean
  // hardware (defaults captured by the agents are the restore targets),
  // while everything from the first tick on is fair game.
  if (inject) {
    for (auto& d : ctx.fdevs) d->arm();
    for (auto& f : ctx.fsrcs) f->arm();
  }

  return PreparedRun(std::move(impl));
}

RunResult PreparedRun::finish() {
  DUFP_EXPECT(impl_ != nullptr);
  DUFP_EXPECT(!impl_->finished);
  impl_->finished = true;
  Impl& ctx = *impl_;
  const RunConfig& config = ctx.config;
  sim::Simulation& s = *ctx.simulation;
  DUFP_EXPECT(s.finished());
  const int n = s.socket_count();
  const bool telem_on = config.telemetry.enabled;

  RunResult result;
  result.summary = s.summarize();
  result.batch_stats = s.batch_stats();
  for (int i = 0; i < n; ++i) {
    result.cell_stats.add(s.rapl(i).governor().cell_stats());
  }

  for (const auto& agent : ctx.agents) {
    result.agent_stats.push_back(agent->stats());
    result.health.add(agent->stats().health);
  }
  for (const auto& plan : ctx.plans) {
    result.fault_stats.push_back(plan->stats());
    result.health.faults_injected += plan->stats().total();
  }

  // Machine-wide per-phase totals.
  for (int i = 0; i < n; ++i) {
    const auto& totals = s.phase_totals(i);
    const auto& phases = config.profile->phases();
    for (std::size_t p = 0; p < phases.size(); ++p) {
      auto& agg = result.phase_totals[phases[p].name];
      agg.wall_seconds += totals[p].wall_seconds;
      agg.pkg_energy_j += totals[p].pkg_energy_j;
      agg.dram_energy_j += totals[p].dram_energy_j;
    }
  }
  // Wall seconds are per-socket-parallel, not additive: report the mean.
  for (auto& [name, agg] : result.phase_totals) {
    agg.wall_seconds /= static_cast<double>(n);
  }

  if (telem_on) {
    // Run-summary gauges so a scrape of the exposition alone carries the
    // headline numbers (the registry keeps the shared cells alive).
    auto& reg = ctx.telemetry->registry();
    reg.gauge("dufp_run_exec_seconds", "Simulated execution time")
        .set(result.summary.exec_seconds);
    reg.gauge("dufp_run_pkg_power_watts", "Run-average package power")
        .set(result.summary.avg_pkg_power_w);
    reg.gauge("dufp_run_dram_power_watts", "Run-average DRAM power")
        .set(result.summary.avg_dram_power_w);
    reg.gauge("dufp_run_pkg_energy_joules", "Package energy consumed")
        .set(result.summary.pkg_energy_j);
    reg.gauge("dufp_run_dram_energy_joules", "DRAM energy consumed")
        .set(result.summary.dram_energy_j);
    reg.gauge("dufp_run_total_energy_joules", "Package + DRAM energy")
        .set(result.summary.total_energy_j());
    // Note: cell-edge table economics (RunResult::cell_stats) stay OUT
    // of the telemetry snapshot on purpose.  Snapshot bytes are covered
    // by the serial ≡ parallel ≡ sharded identity guarantee, but cache
    // warmth is a property of the execution strategy (which runs shared
    // the process, in what order), not of the run — the counters would
    // legitimately differ across strategies.  Benches report them from
    // RunResult::cell_stats instead.
    result.telemetry = ctx.telemetry->snapshot();
  }
  return result;
}

RunResult run_once(const RunConfig& config) {
  PreparedRun run = prepare_run(config);
  run.simulation().run();
  return run.finish();
}

std::vector<RunResult> run_batch(const std::vector<RunConfig>& configs,
                                 const BatchOptions& options) {
  const int lanes = options.lanes > 0
                        ? options.lanes
                        : BenchOptions::from_env().resolved_lanes();
  DUFP_EXPECT(lanes >= 1);
  DUFP_EXPECT(options.threads >= 1);
  std::vector<RunResult> results(configs.size());

  // Partition: lane-able configs interleave in waves; the rest (shared
  // trace sinks would interleave their byte streams; socket-parallel
  // runs use a different engine loop with different BatchStats) run
  // sequentially via run_once.
  std::vector<std::size_t> batchable;
  batchable.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const RunConfig& cfg = configs[i];
    if (lanes > 1 && cfg.trace == nullptr && cfg.sim.socket_threads <= 1) {
      batchable.push_back(i);
    } else {
      results[i] = run_once(cfg);
    }
  }

  for (std::size_t w = 0; w < batchable.size();
       w += static_cast<std::size_t>(lanes)) {
    const std::size_t end =
        std::min(batchable.size(), w + static_cast<std::size_t>(lanes));
    std::vector<PreparedRun> prepared;
    prepared.reserve(end - w);
    std::vector<sim::Simulation*> sims;
    sims.reserve(end - w);
    for (std::size_t j = w; j < end; ++j) {
      prepared.push_back(prepare_run(configs[batchable[j]]));
      sims.push_back(&prepared.back().simulation());
    }
    sim::MultiSimOptions ms_opts;
    ms_opts.threads = options.threads;
    sim::MultiSim engine(std::move(sims), ms_opts);
    engine.run_all();
    for (std::size_t j = w; j < end; ++j) {
      results[batchable[j]] = prepared[j - w].finish();
    }
  }
  return results;
}

RepeatedResult aggregate_runs(const std::vector<RunResult>& runs) {
  DUFP_EXPECT(!runs.empty());
  const int repetitions = static_cast<int>(runs.size());
  std::vector<double> exec;
  std::vector<double> pkg_power;
  std::vector<double> dram_power;
  std::vector<double> pkg_energy;
  std::vector<double> dram_energy;
  std::vector<double> total_energy;
  std::map<std::string, sim::PhaseTotals> phase_sums;

  for (const RunResult& res : runs) {
    exec.push_back(res.summary.exec_seconds);
    pkg_power.push_back(res.summary.avg_pkg_power_w);
    dram_power.push_back(res.summary.avg_dram_power_w);
    pkg_energy.push_back(res.summary.pkg_energy_j);
    dram_energy.push_back(res.summary.dram_energy_j);
    total_energy.push_back(res.summary.total_energy_j());
    for (const auto& [name, t] : res.phase_totals) {
      auto& agg = phase_sums[name];
      agg.wall_seconds += t.wall_seconds;
      agg.pkg_energy_j += t.pkg_energy_j;
      agg.dram_energy_j += t.dram_energy_j;
    }
  }

  RepeatedResult out;
  for (const RunResult& res : runs) out.health.add(res.health);
  out.runs = repetitions;
  out.exec_seconds = trimmed_summary(exec, exec);
  out.avg_pkg_power_w = trimmed_summary(exec, pkg_power);
  out.avg_dram_power_w = trimmed_summary(exec, dram_power);
  out.pkg_energy_j = trimmed_summary(exec, pkg_energy);
  out.dram_energy_j = trimmed_summary(exec, dram_energy);
  out.total_energy_j = trimmed_summary(exec, total_energy);
  for (auto& [name, t] : phase_sums) {
    t.wall_seconds /= repetitions;
    t.pkg_energy_j /= repetitions;
    t.dram_energy_j /= repetitions;
    out.mean_phase_totals[name] = t;
  }
  return out;
}

}  // namespace dufp::harness
