// Experiment execution: one fully wired run of an application on the
// simulated yeti-2 under a chosen policy, plus the paper's repetition
// protocol (10 runs, trim fastest + slowest, average the rest — Sec. V).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/agent.h"
#include "core/policy.h"
#include "faults/fault_plan.h"
#include "hwmodel/socket_config.h"
#include "rapl/cell_cache.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "telemetry/telemetry.h"
#include "workloads/profiles.h"

namespace dufp::harness {

/// Legacy mode enum (core::PolicyMode); `none` is the harness-level
/// baseline value — no agent is instantiated for it.  New code selects a
/// policy by registry name (RunConfig::policy_name); the enum survives as
/// a compatibility shim over the four paper controllers.
using core::PolicyMode;

/// Deprecated: policy names come from the registry (core::Policy::name()
/// / PolicyRegistry::names()); for the legacy enum use core::to_string.
/// Kept as a forwarder for older call sites.
inline std::string policy_mode_name(PolicyMode m) {
  return core::to_string(m);
}

/// Static per-phase power cap (Fig. 1b/1c): while the named phase runs,
/// the package limit is `cap_w`; leaving the phase restores the default.
struct PhaseCapSpec {
  std::string phase;
  double cap_w = 0.0;
};

struct RunConfig {
  const workloads::WorkloadProfile* profile = nullptr;  ///< required
  /// Legacy policy selector; prefer `policy_name`.  Ignored when
  /// `policy_name` is set (setting both is a validation error).
  PolicyMode mode = PolicyMode::none;
  /// Registry-keyed policy selector ("DUF", "cuttlefish", ...); resolved
  /// case-insensitively in core::PolicyRegistry::instance().  Empty means
  /// fall back to `mode` ("" + PolicyMode::none = the uncontrolled
  /// baseline run).
  std::string policy_name;
  double tolerated_slowdown = 0.0;
  std::uint64_t seed = 1;

  hw::MachineConfig machine;
  core::PolicyConfig policy;       ///< interval, steps, thresholds
  sim::SimulationOptions sim;      ///< tick, jitter, governor
  double sampler_noise_sigma = 0.001;

  /// Fig. 1a: a static cap programmed before the run starts (applies in
  /// any mode, including `none`).
  std::optional<double> static_cap_w;

  /// Fig. 1b/1c: partial capping of one phase.
  std::optional<PhaseCapSpec> phase_cap;

  /// Fault injection (robustness experiments).  When `faults.enabled` the
  /// harness interposes FaultyMsrDevice / FaultyCounterSource between the
  /// control plane and the substrate, armed only once the run starts.
  /// Each socket's fault stream is seeded
  /// Rng(faults.seed).fork(seed).fork(socket), so storms are independent
  /// per socket yet bit-reproducible per (fault seed, run seed) pair.
  faults::FaultOptions faults;

  /// Optional tracing (not owned).
  sim::TraceSink* trace = nullptr;

  /// Telemetry (metrics registry + per-socket flight recorders).  Off by
  /// default — the null-sink path leaves every existing output
  /// bit-identical; telemetry draws no randomness and never changes a
  /// decision, so enabling it is also bit-identical (a tier-1 guarantee).
  telemetry::TelemetryConfig telemetry;

  /// Checks the whole config and reports *every* problem found (empty =
  /// valid), instead of failing on the first one: null profile,
  /// non-positive tolerance / interval / tick, a phase cap naming a phase
  /// the profile lacks, ...  `run_once` and `ExperimentPlan::add_cell`
  /// call this and throw std::invalid_argument with the full list.
  std::vector<std::string> validate() const;

  /// The effective policy for this run: `policy_name` when set (spelled
  /// canonically when it resolves), otherwise the legacy enum's display
  /// name; "" for the uncontrolled baseline (no agent).
  std::string resolved_policy() const;
};

/// Machine-wide robustness roll-up (agents' AgentHealth summed over
/// sockets plus the total number of injected faults), carried through the
/// repetition protocol into CSV/bench output so fault-storm results are
/// auditable: zero counters under a storm would mean the storm never
/// reached the agent, not that the agent is perfect.
struct HealthTotals {
  std::uint64_t actuation_retries = 0;
  std::uint64_t actuation_failures = 0;
  std::uint64_t sample_read_failures = 0;
  std::uint64_t samples_rejected = 0;
  std::uint64_t degradations = 0;
  std::uint64_t reengagements = 0;
  std::uint64_t intervals_degraded = 0;
  std::uint64_t faults_injected = 0;

  void add(const core::AgentHealth& h);
  void add(const HealthTotals& other);
};

struct RunResult {
  sim::RunSummary summary;
  std::vector<core::AgentStats> agent_stats;  ///< empty in mode none

  /// Per-socket injection counts (empty unless faults.enabled).
  std::vector<faults::FaultStats> fault_stats;

  /// Agent health summed over sockets + total faults injected.
  HealthTotals health;

  /// Machine-wide per-phase totals, keyed by phase name (summed over
  /// sockets and over every visit of the phase).
  std::map<std::string, sim::PhaseTotals> phase_totals;

  /// Present iff config.telemetry.enabled: every metric series (including
  /// run-summary gauges registered after the run), each socket's final
  /// flight-recorder contents, and the watchdog fail-open dumps.  Feed it
  /// to telemetry::export_run / write_prometheus / write_chrome_trace.
  std::optional<telemetry::TelemetrySnapshot> telemetry;

  /// How the engine spent its ticks (leap / step / batch split) — lets the
  /// throughput benches report the event-leaping behaviour without owning
  /// the Simulation.
  sim::BatchStats batch_stats;

  /// Cell-edge table economics summed over the run's governors (cold
  /// builds, planner probes, shared-cache hits, way evictions) — how much
  /// of the run started warm.  Process-local diagnostics: deliberately
  /// NOT part of the shard wire codec, so gathered results carry zeros
  /// here (the workers' counters live in the worker processes).
  rapl::CellStats cell_stats;
};

/// Executes one run.  Throws std::invalid_argument on malformed configs.
RunResult run_once(const RunConfig& config);

/// A run wired but not yet executed: the simulation plus every object
/// run_once would have built around it (zones, agents, fault decorators,
/// telemetry), with injectors armed.  Drive `simulation()` to completion
/// — via Simulation::run(), or interleaved with other runs through
/// sim::MultiSim — then call finish() exactly once to collect the
/// RunResult run_once would have produced.
class PreparedRun {
 public:
  PreparedRun(PreparedRun&&) noexcept;
  PreparedRun& operator=(PreparedRun&&) noexcept;
  ~PreparedRun();

  sim::Simulation& simulation();

  /// Collects stats / phase totals / telemetry into the RunResult.
  /// Requires the simulation to have run to completion.
  RunResult finish();

 private:
  friend PreparedRun prepare_run(const RunConfig& config);
  struct Impl;
  explicit PreparedRun(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Validates and wires one run without executing it.  run_once(cfg) ≡
/// { auto p = prepare_run(cfg); p.simulation().run(); return p.finish(); }.
PreparedRun prepare_run(const RunConfig& config);

/// Lane-batched execution of independent runs (the harness face of
/// sim::MultiSim).
struct BatchOptions {
  /// Lane width: how many runs interleave through one engine pass.
  /// 0 resolves from DUFP_LANES (default 8); 1 executes sequentially
  /// via run_once.
  int lanes = 0;
  /// Lane-group threads handed to MultiSim (1 = serial).
  int threads = 1;
};

/// Executes every config and returns results in input order, each
/// byte-identical to run_once(configs[i]).  Configs are processed in
/// waves of `lanes` interleaved simulations; configs that cannot join a
/// wave (an attached trace sink — sinks may be shared across configs, so
/// interleaving their tick streams would reorder bytes — or
/// sim.socket_threads > 1) fall back to run_once.
std::vector<RunResult> run_batch(const std::vector<RunConfig>& configs,
                                 const BatchOptions& options = {});

/// Aggregated repeated-runs metrics following the paper's protocol; the
/// trimming key is execution time.
struct RepeatedResult {
  TrimmedSummary exec_seconds;
  TrimmedSummary avg_pkg_power_w;
  TrimmedSummary avg_dram_power_w;
  TrimmedSummary pkg_energy_j;
  TrimmedSummary dram_energy_j;
  TrimmedSummary total_energy_j;

  /// Per-phase wall seconds / package power (means over the kept runs),
  /// for the partial-capping figures.
  std::map<std::string, sim::PhaseTotals> mean_phase_totals;

  /// Health counters summed over *all* repetitions (not trimmed: a
  /// degradation in the fastest run still happened).
  HealthTotals health;
  int runs = 0;
};

/// Aggregates already-executed runs into the paper's trimmed summary.
/// Index order is the repetition order — the `ExperimentPlan` reassembles
/// parallel results into this order before calling it, which is what
/// makes parallel output bit-identical to serial.
RepeatedResult aggregate_runs(const std::vector<RunResult>& runs);

/// Runs `repetitions` times with per-repetition derived seeds (see
/// harness::job_seed) and aggregates.  Thin wrapper over ExperimentPlan:
/// repetitions execute in parallel across DUFP_THREADS workers with
/// results identical to a serial run.
RepeatedResult run_repeated(RunConfig config, int repetitions = 10);

/// Relative change in percent: +3.0 means `value` is 3 % above `base`.
double percent_over(double value, double base);

}  // namespace dufp::harness
