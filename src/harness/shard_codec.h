// Bit-exact JSON codecs for shard result transport.
//
// A shard worker serializes each job's RunResult (and its optional
// telemetry snapshot) to one JSONL line; the gatherer decodes them and
// feeds ExperimentPlan::finish_with, so the aggregates it produces are
// the *same doubles* a serial in-process run would aggregate.  That
// demands a lossless double transport: every floating-point field
// travels as its IEEE-754 bit pattern (json::double_to_hex), never as
// decimal text.  Counters travel as decimal u64, enums as their integer
// values (with a format version bump required to change any of it).
#pragma once

#include "common/json.h"
#include "harness/runner.h"

namespace dufp::harness {

/// RunResult -> JSON value (single line once dumped).
json::Value encode_run_result(const RunResult& result);

/// Inverse of encode_run_result; throws std::runtime_error naming the
/// offending field on malformed input.
RunResult decode_run_result(const json::Value& v);

/// Telemetry snapshot codec (used inside the RunResult codec; exposed
/// for tests).
json::Value encode_snapshot(const telemetry::TelemetrySnapshot& snap);
telemetry::TelemetrySnapshot decode_snapshot(const json::Value& v);

}  // namespace dufp::harness
