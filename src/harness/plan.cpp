#include "harness/plan.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <stdexcept>

#include "common/expect.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "harness/experiment.h"
#include "harness/options.h"

namespace dufp::harness {

std::uint64_t job_seed(std::uint64_t base_seed, int repetition) {
  // SplitMix64 finalizer over (base_seed, repetition).  The golden-ratio
  // stride keeps consecutive repetitions far apart in the input domain;
  // the finalizer mixes them into statistically independent seeds.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                    (static_cast<std::uint64_t>(repetition) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

ExperimentPlan::CellId ExperimentPlan::add_cell(RunConfig config,
                                                int repetitions,
                                                std::string label) {
  DUFP_EXPECT(!finished_);
  if (repetitions < 1) {
    throw std::invalid_argument("ExperimentPlan: repetitions must be >= 1");
  }
  const auto problems = config.validate();
  if (!problems.empty()) {
    std::string msg = "ExperimentPlan: invalid cell config:";
    for (std::size_t i = 0; i < problems.size(); ++i) {
      msg += (i == 0 ? " " : "; ") + problems[i];
    }
    throw std::invalid_argument(msg);
  }

  const CellId id = cells_.size();
  Cell cell;
  cell.config = std::move(config);
  cell.repetitions = repetitions;
  cell.label = std::move(label);
  cells_.push_back(std::move(cell));
  // The enumeration contract (see JobRef): cell-major in add_cell order,
  // repetition-minor.
  for (int r = 0; r < repetitions; ++r) {
    jobs_.push_back(JobRef{id, r});
  }
  return id;
}

RunConfig ExperimentPlan::job_config(std::size_t i) const {
  const JobRef& job = jobs_.at(i);
  RunConfig cfg = cells_[job.cell].config;
  cfg.seed = job_seed(cfg.seed, job.repetition);
  return cfg;
}

std::vector<RunResult> ExperimentPlan::run_jobs(
    const std::vector<std::size_t>& indices, int threads) const {
  const std::size_t total = indices.size();
  std::vector<RunResult> results(total);

  // Completion counter for coarse progress notes (stderr only; stdout
  // stays byte-identical whatever the thread count or timing).
  std::atomic<std::size_t> done{0};
  const std::size_t note_step = total >= 16 ? total / 8 : total;

  auto execute = [&](std::size_t slot) {
    results[slot] = run_once(job_config(indices[slot]));
    const std::size_t d = done.fetch_add(1) + 1;
    if (note_step != 0 && d % note_step == 0 && d < total) {
      note_progress(strf("  jobs %zu/%zu", d, total));
    }
  };

  if (threads <= 1 || total <= 1) {
    // Serial path: hand the whole job list to the lane-batched engine,
    // which interleaves runs in waves of DUFP_LANES through one engine
    // pass (sim::MultiSim).  Results are byte-identical to the loop of
    // run_once calls this replaces; configs a lane cannot carry (trace
    // sinks, socket_threads > 1) fall back to run_once inside run_batch.
    std::vector<RunConfig> configs;
    configs.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      configs.push_back(job_config(indices[i]));
    }
    std::vector<RunResult> batched = run_batch(configs);
    for (std::size_t i = 0; i < total; ++i) {
      results[i] = std::move(batched[i]);
      const std::size_t d = done.fetch_add(1) + 1;
      if (note_step != 0 && d % note_step == 0 && d < total) {
        note_progress(strf("  jobs %zu/%zu", d, total));
      }
    }
  } else {
    const int workers =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(threads), total));
    ThreadPool pool(workers, total);
    std::vector<std::future<void>> futures;
    futures.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      futures.push_back(pool.submit([&execute, i] { execute(i); }));
    }
    for (auto& f : futures) f.get();  // rethrows the first job failure
  }
  return results;
}

void ExperimentPlan::finish_with(std::vector<RunResult> results) {
  if (finished_) return;
  if (results.size() != jobs_.size()) {
    throw std::invalid_argument(
        strf("ExperimentPlan: finish_with() got %zu results for %zu jobs",
             results.size(), jobs_.size()));
  }
  // Reassemble in deterministic job order: jobs_ lists each cell's
  // repetitions consecutively and in repetition order.
  std::size_t next = 0;
  for (auto& cell : cells_) {
    std::vector<RunResult> runs;
    runs.reserve(static_cast<std::size_t>(cell.repetitions));
    for (int r = 0; r < cell.repetitions; ++r) {
      runs.push_back(std::move(results[next++]));
    }
    cell.result = aggregate_runs(runs);
  }
  finished_ = true;
}

void ExperimentPlan::run() {
  run(BenchOptions::from_env().resolved_threads());
}

void ExperimentPlan::run(int threads) {
  if (finished_) return;
  std::vector<std::size_t> all(jobs_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  finish_with(run_jobs(all, threads));
}

const RepeatedResult& ExperimentPlan::result(CellId cell) const {
  if (!finished_) {
    throw std::logic_error("ExperimentPlan: result() before run()");
  }
  return cells_.at(cell).result;
}

RepeatedResult run_repeated(RunConfig config, int repetitions) {
  ExperimentPlan plan;
  const auto id = plan.add_cell(std::move(config), repetitions);
  plan.run();
  return plan.result(id);
}

}  // namespace dufp::harness
