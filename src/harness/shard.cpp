#include "harness/shard.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.h"
#include "core/policy_registry.h"
#include "harness/shard_codec.h"
#include "telemetry/export.h"
#include "workloads/profiles.h"

namespace dufp::harness {

namespace {

using json::Value;

Value raw_double(double v) { return Value::make_raw_number(strf("%.17g", v)); }

[[noreturn]] void gather_fail(const std::string& file, int line,
                              const std::string& what) {
  throw std::runtime_error(
      strf("gather: %s:%d: %s", file.c_str(), line, what.c_str()));
}

[[noreturn]] void format_fail(const std::string& file, int line,
                              const std::string& what) {
  throw ShardFormatError(
      strf("gather: %s:%d: %s", file.c_str(), line, what.c_str()));
}

}  // namespace

// -- GridSpec ----------------------------------------------------------------

json::Value GridSpec::to_json() const {
  Value o = Value::make_object();
  o.add("format", Value::make_string(kGridSpecFormat));
  o.add("version", Value::make_i64(kShardFormatVersion));
  o.add("name", Value::make_string(name));
  Value app_arr = Value::make_array();
  for (const auto app : apps) {
    app_arr.push_back(Value::make_string(workloads::app_name(app)));
  }
  o.add("apps", std::move(app_arr));
  // Key "modes" (not "policies"): the wire name predates the registry and
  // is pinned by the fingerprint of every existing spec.
  Value mode_arr = Value::make_array();
  for (const auto& policy : policies) {
    mode_arr.push_back(Value::make_string(policy));
  }
  o.add("modes", std::move(mode_arr));
  Value tol_arr = Value::make_array();
  for (const double tol : tolerances) tol_arr.push_back(raw_double(tol));
  o.add("tolerances", std::move(tol_arr));
  o.add("repetitions", Value::make_i64(repetitions));
  o.add("seed", Value::make_u64(seed));
  o.add("sockets", Value::make_i64(sockets));
  o.add("fault_rate", raw_double(fault_rate));
  o.add("fault_seed", Value::make_u64(fault_seed));
  o.add("telemetry", Value::make_bool(telemetry));
  return o;
}

std::string GridSpec::canonical_text() const { return to_json().dump(); }

std::uint64_t GridSpec::fingerprint() const {
  return json::fnv1a(canonical_text());
}

GridSpec GridSpec::from_json(const json::Value& v) {
  if (v.at("format").as_string() != kGridSpecFormat) {
    throw ShardFormatError("GridSpec: not a " + std::string(kGridSpecFormat) +
                           " document");
  }
  if (v.at("version").as_i64() != kShardFormatVersion) {
    throw ShardFormatError(
        strf("GridSpec: unsupported version %lld (this build speaks %d)",
             static_cast<long long>(v.at("version").as_i64()),
             kShardFormatVersion));
  }
  GridSpec spec;
  spec.name = v.at("name").as_string();
  spec.apps.clear();
  for (const Value& app : v.at("apps").as_array()) {
    spec.apps.push_back(workloads::app_by_name(app.as_string()));
  }
  for (const Value& mode : v.at("modes").as_array()) {
    spec.policies.push_back(mode.as_string());
  }
  for (const Value& tol : v.at("tolerances").as_array()) {
    spec.tolerances.push_back(tol.as_double());
  }
  spec.repetitions = static_cast<int>(v.at("repetitions").as_i64());
  spec.seed = v.at("seed").as_u64();
  spec.sockets = static_cast<int>(v.at("sockets").as_i64());
  spec.fault_rate = v.at("fault_rate").as_double();
  spec.fault_seed = v.at("fault_seed").as_u64();
  spec.telemetry = v.at("telemetry").as_bool();

  const auto problems = spec.validate();
  if (!problems.empty()) {
    std::string msg = "GridSpec: invalid spec:";
    for (std::size_t i = 0; i < problems.size(); ++i) {
      msg += (i == 0 ? " " : "; ") + problems[i];
    }
    throw ShardFormatError(msg);
  }
  // Canonicalize alias/case spellings so CSV labels, telemetry labels and
  // re-serialized specs all use the registry name.
  for (auto& policy : spec.policies) {
    policy = core::PolicyRegistry::instance().at(policy).name;
  }
  return spec;
}

GridSpec GridSpec::parse(std::string_view text) {
  return from_json(json::parse(text));
}

GridSpec GridSpec::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("GridSpec: cannot open " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

GridSpec GridSpec::reference() {
  GridSpec spec;
  spec.name = "reference";
  spec.apps = {workloads::AppId::cg, workloads::AppId::ep};
  spec.policies = {"DUF", "DUFP"};
  spec.tolerances = {0.05, 0.10};
  spec.repetitions = 3;
  spec.seed = 1;
  spec.sockets = 4;
  return spec;
}

std::vector<std::string> GridSpec::validate() const {
  std::vector<std::string> problems;
  if (name.empty()) problems.push_back("name is empty");
  if (apps.empty()) problems.push_back("apps is empty");
  if (policies.empty()) problems.push_back("modes is empty");
  // Every entry must resolve in the registry, exactly once: unknown and
  // duplicate names are each reported individually so one pass over the
  // error message fixes the whole list.
  const auto& registry = core::PolicyRegistry::instance();
  std::vector<std::string> seen;
  for (const auto& policy : policies) {
    const std::string key = to_lower(trim(policy));
    if (key == "default" || key == "none") {
      problems.push_back(
          "modes must not contain 'default' (the baseline is implicit)");
      continue;
    }
    const auto* entry = registry.find(policy);
    if (entry == nullptr) {
      problems.push_back("modes contains unknown policy \"" + policy +
                         "\" (known: " + registry.known_names() + ")");
      continue;
    }
    if (std::find(seen.begin(), seen.end(), entry->name) != seen.end()) {
      problems.push_back("modes contains duplicate policy \"" + policy +
                         "\"");
      continue;
    }
    seen.push_back(entry->name);
  }
  if (tolerances.empty()) problems.push_back("tolerances is empty");
  if (repetitions < 1) problems.push_back("repetitions must be >= 1");
  if (sockets < 1) problems.push_back("sockets must be >= 1");
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    problems.push_back("fault_rate must be in [0, 1]");
  }
  return problems;
}

// -- plan building -----------------------------------------------------------

GridPlan build_plan(const GridSpec& spec) {
  GridPlan gp;
  // Deliberately NOT default_run_config: that reads the environment
  // (DUFP_SOCKETS / DUFP_FAULT_RATE / ...), and a spec-driven plan must
  // be identical in every process regardless of its environment.
  const GridSpec& s = spec;
  gp.index = add_grid_cells(
      gp.plan, spec.apps, spec.policies, spec.tolerances, spec.repetitions,
      spec.seed, [&s](const workloads::WorkloadProfile& prof) {
        RunConfig cfg;
        cfg.profile = &prof;
        cfg.machine.sockets = s.sockets;
        if (s.fault_rate > 0.0) {
          cfg.faults = faults::FaultOptions::storm(s.fault_rate, s.fault_seed);
        }
        cfg.telemetry.enabled = s.telemetry;
        return cfg;
      });
  return gp;
}

// -- shard assignment --------------------------------------------------------

std::vector<std::size_t> shard_jobs_static(std::size_t job_count, int shards,
                                           int shard) {
  if (shards < 1 || shard < 0 || shard >= shards) {
    throw std::invalid_argument(
        strf("shard_jobs_static: shard %d of %d is out of range", shard,
             shards));
  }
  std::vector<std::size_t> indices;
  for (std::size_t j = static_cast<std::size_t>(shard); j < job_count;
       j += static_cast<std::size_t>(shards)) {
    indices.push_back(j);
  }
  return indices;
}

// -- lease-based chunk claims ------------------------------------------------
//
// Lease record layout (fixed width so renew() can rewrite in place with
// one pwrite): "owner=<id>\nheartbeat=<20-digit counter>\n".

namespace {

std::string lease_record(const std::string& owner, std::uint64_t heartbeat) {
  return strf("owner=%s\nheartbeat=%020llu\n", owner.c_str(),
              static_cast<unsigned long long>(heartbeat));
}

/// Seconds since the file at `path` was last written, or nullopt when it
/// does not exist.  CLOCK_REALTIME on both sides: the mtime a shared
/// filesystem stamps is wall-clock, so the staleness comparison must be
/// too.
std::optional<double> file_age_seconds(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  struct timespec now{};
  ::clock_gettime(CLOCK_REALTIME, &now);
  return (static_cast<double>(now.tv_sec) -
          static_cast<double>(st.st_mtim.tv_sec)) +
         (static_cast<double>(now.tv_nsec) -
          static_cast<double>(st.st_mtim.tv_nsec)) *
             1e-9;
}

}  // namespace

std::string FileChunkClaimer::claim_path(const std::string& dir, int chunk) {
  return dir + "/chunk" + std::to_string(chunk) + ".claim";
}
std::string FileChunkClaimer::done_path(const std::string& dir, int chunk) {
  return dir + "/chunk" + std::to_string(chunk) + ".done";
}
std::string FileChunkClaimer::poison_path(const std::string& dir, int chunk) {
  return dir + "/chunk" + std::to_string(chunk) + ".poison";
}

std::optional<FileChunkClaimer::LeaseInfo> FileChunkClaimer::read_lease(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  LeaseInfo info;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("owner=", 0) == 0) {
      info.owner = line.substr(6);
    } else if (line.rfind("heartbeat=", 0) == 0) {
      unsigned long long hb = 0;
      if (parse_u64(trim(line.substr(10)), hb)) info.heartbeat = hb;
    }
  }
  if (info.owner.empty()) return std::nullopt;
  return info;
}

FileChunkClaimer::FileChunkClaimer(std::string dir, LeaseOptions lease)
    : dir_(std::move(dir)),
      owner_(lease.owner.empty() ? "pid" + std::to_string(::getpid())
                                 : std::move(lease.owner)),
      ttl_seconds_(lease.ttl_seconds) {}

FileChunkClaimer::~FileChunkClaimer() {
  // Close fds only: held leases stay on disk, exactly as after a crash.
  // A clean shutdown that wants to hand chunks back calls release_all().
  for (const auto& [chunk, fd] : held_) ::close(fd);
}

bool FileChunkClaimer::try_claim(int chunk) {
  const std::string claim = claim_path(dir_, chunk);
  // A few bounded rounds: each loses only to concrete progress by
  // someone else (their create or their steal), so looping forever is
  // impossible — 8 rounds is already unreachable in practice.
  for (int round = 0; round < 8; ++round) {
    struct stat st{};
    if (::stat(done_path(dir_, chunk).c_str(), &st) == 0) return false;
    if (::stat(poison_path(dir_, chunk).c_str(), &st) == 0) {
      if (std::find(poisoned_seen_.begin(), poisoned_seen_.end(), chunk) ==
          poisoned_seen_.end()) {
        poisoned_seen_.push_back(chunk);
      }
      return false;
    }

    const int fd = ::open(claim.c_str(), O_CREAT | O_EXCL | O_RDWR, 0644);
    if (fd >= 0) {
      const std::string record = lease_record(owner_, ++heartbeat_);
      if (::pwrite(fd, record.data(), record.size(), 0) < 0) {
        ::close(fd);
        ::unlink(claim.c_str());
        throw std::runtime_error("FileChunkClaimer: cannot write " + claim +
                                 ": " + std::strerror(errno));
      }
      held_[chunk] = fd;
      return true;
    }
    if (errno != EEXIST) {
      throw std::runtime_error("FileChunkClaimer: cannot create " + claim +
                               ": " + std::strerror(errno));
    }

    // Someone holds the lease.  Fresh (or stealing disabled): back off.
    const auto age = file_age_seconds(claim);
    if (!age.has_value()) continue;  // vanished under us; retry the create
    if (ttl_seconds_ <= 0.0 || *age <= ttl_seconds_) return false;

    // Stale: steal by renaming the lease away.  rename(2) is atomic, so
    // of any racing stealers exactly one succeeds; the rest see ENOENT
    // and loop back to race for the create like everyone else.
    const std::string stale =
        claim + ".stale." + owner_ + "." + std::to_string(steal_seq_++);
    if (::rename(claim.c_str(), stale.c_str()) == 0) {
      ::unlink(stale.c_str());
      continue;  // now race for the O_EXCL create
    }
    if (errno == ENOENT) continue;  // another stealer won; race the create
    throw std::runtime_error("FileChunkClaimer: cannot steal " + claim +
                             ": " + std::strerror(errno));
  }
  return false;
}

void FileChunkClaimer::renew() {
  ++heartbeat_;
  for (const auto& [chunk, fd] : held_) {
    const std::string record = lease_record(owner_, heartbeat_);
    // pwrite on the kept-open fd touches *our* inode even if the lease
    // path was stolen out from under us — a thief's fresh lease is never
    // overwritten, and the write's mtime bump is the heartbeat signal.
    (void)::pwrite(fd, record.data(), record.size(), 0);
  }
}

bool FileChunkClaimer::still_owner(int chunk) {
  const auto it = held_.find(chunk);
  if (it == held_.end()) return false;
  struct stat ours{}, current{};
  if (::fstat(it->second, &ours) != 0) return false;
  if (::stat(claim_path(dir_, chunk).c_str(), &current) != 0) {
    return false;  // lease gone entirely (released or mid-steal)
  }
  return ours.st_dev == current.st_dev && ours.st_ino == current.st_ino;
}

bool FileChunkClaimer::complete(int chunk) {
  const auto it = held_.find(chunk);
  if (it == held_.end()) return false;
  if (!still_owner(chunk)) {
    // Stolen while we were stalled: the thief re-runs the chunk and will
    // record completion itself.  Dropping out here is what keeps the
    // at-most-one-live-owner guarantee useful.
    ::close(it->second);
    held_.erase(it);
    return false;
  }
  // Done marker first, then release: any observer ordering is safe —
  // done+claim reads as done, and creating an existing marker (a
  // re-delivered completion) is a no-op, making completions idempotent.
  const std::string done = done_path(dir_, chunk);
  const int fd = ::open(done.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) {
    throw std::runtime_error("FileChunkClaimer: cannot record " + done +
                             ": " + std::strerror(errno));
  }
  (void)::write(fd, owner_.data(), owner_.size());
  ::close(fd);
  ::close(it->second);
  held_.erase(it);
  ::unlink(claim_path(dir_, chunk).c_str());
  return true;
}

void FileChunkClaimer::release_all() {
  for (auto it = held_.begin(); it != held_.end();) {
    if (still_owner(it->first)) {
      ::unlink(claim_path(dir_, it->first).c_str());
    }
    ::close(it->second);
    it = held_.erase(it);
  }
}

// -- shard worker ------------------------------------------------------------

namespace {

/// Per-process emission state threaded through every chunk: the chaos
/// plan fires on the count of records this process has emitted, and the
/// claimer heartbeats between records so a long chunk never looks dead.
struct EmitContext {
  const ChaosPlan* chaos = nullptr;
  ChunkClaimer* claimer = nullptr;
  std::uint64_t position = 0;
};

void emit_records(const std::vector<std::size_t>& indices,
                  const std::vector<RunResult>& results, std::ostream& out,
                  EmitContext& ctx) {
  for (std::size_t i = 0; i < indices.size(); ++i) {
    Value line = Value::make_object();
    line.add("job", Value::make_u64(indices[i]));
    line.add("result", encode_run_result(results[i]));
    const std::string record = line.dump();
    if (ctx.claimer != nullptr) ctx.claimer->renew();
    if (ctx.chaos != nullptr) {
      ctx.chaos->maybe_kill(ctx.position, out, record);  // may not return
    }
    out << record << '\n';
    ++ctx.position;
  }
  out.flush();  // one chunk's results survive a later worker crash
}

}  // namespace

void run_shard(const GridSpec& spec, const ShardRunOptions& options,
               std::ostream& out) {
  if (options.chunk_size > 0 && options.claimer == nullptr) {
    throw std::invalid_argument("run_shard: dynamic mode needs a claimer");
  }
  const GridPlan gp = build_plan(spec);
  const std::size_t jobs = gp.plan.job_count();

  // Resume mode: the universe of work shrinks to the manifest's missing
  // list; everything else (header, chunking, claiming) is unchanged, so
  // a resume output file is an ordinary shard file.
  std::vector<std::size_t> universe;
  if (options.job_filter != nullptr) {
    universe = *options.job_filter;
    for (std::size_t i = 0; i < universe.size(); ++i) {
      if (universe[i] >= jobs || (i > 0 && universe[i] <= universe[i - 1])) {
        throw std::invalid_argument(
            "run_shard: job filter must be strictly ascending and in range");
      }
    }
  } else {
    universe.resize(jobs);
    for (std::size_t i = 0; i < jobs; ++i) universe[i] = i;
  }

  const ChaosPlan chaos(options.chaos);
  EmitContext ctx;
  ctx.chaos = chaos.enabled() ? &chaos : nullptr;
  ctx.claimer = options.claimer;

  Value header = Value::make_object();
  header.add("format", Value::make_string(kShardResultFormat));
  header.add("version", Value::make_i64(kShardFormatVersion));
  header.add("spec_name", Value::make_string(spec.name));
  header.add("spec_fingerprint",
             Value::make_string(strf("%016llx",
                                     static_cast<unsigned long long>(
                                         spec.fingerprint()))));
  header.add("shard", Value::make_i64(options.shard));
  header.add("shards", Value::make_i64(options.shards));
  header.add("job_count", Value::make_u64(jobs));
  out << header.dump() << '\n';
  out.flush();  // the header survives even an immediate crash

  if (options.chunk_size > 0) {
    // Dynamic mode: claim fixed-size chunks (cut from the universe)
    // until none remain.  Workers race on the claimer; whichever worker
    // wins a chunk runs and emits it, so the union of all files covers
    // every job exactly once — unless a lease is stolen mid-chunk, in
    // which case the stalled owner detects the theft below and drops
    // its duplicate instead of emitting.
    const std::size_t size = static_cast<std::size_t>(options.chunk_size);
    const int chunks =
        static_cast<int>((universe.size() + size - 1) / size);
    for (int c = 0; c < chunks; ++c) {
      if (!options.claimer->try_claim(c)) continue;
      std::vector<std::size_t> indices;
      const std::size_t begin = static_cast<std::size_t>(c) * size;
      const std::size_t end = std::min(universe.size(), begin + size);
      for (std::size_t j = begin; j < end; ++j) {
        indices.push_back(universe[j]);
      }
      const auto results = gp.plan.run_jobs(indices, options.threads);
      // The compute is the long steal window: a worker stalled past the
      // TTL re-checks ownership here and drops its duplicate (the thief
      // re-runs the chunk) instead of emitting records twice.
      if (!options.claimer->still_owner(c)) continue;
      emit_records(indices, results, out, ctx);
      options.claimer->complete(c);
    }
  } else {
    if (options.shards < 1 || options.shard < 0 ||
        options.shard >= options.shards) {
      throw std::invalid_argument(
          strf("run_shard: shard %d of %d is out of range", options.shard,
               options.shards));
    }
    std::vector<std::size_t> indices;
    for (std::size_t p = static_cast<std::size_t>(options.shard);
         p < universe.size(); p += static_cast<std::size_t>(options.shards)) {
      indices.push_back(universe[p]);
    }
    emit_records(indices, gp.plan.run_jobs(indices, options.threads), out,
                 ctx);
  }
}

// -- gather ------------------------------------------------------------------

namespace {

/// The strict missing-jobs error: every absent id (capped), each with
/// the static round-robin shard it would have belonged to, so an
/// operator can see at a glance *which* worker's file is absent or
/// short.
[[noreturn]] void fail_missing(const std::vector<std::size_t>& missing,
                               std::size_t jobs, int header_shards) {
  constexpr std::size_t kListCap = 16;
  std::string list;
  for (std::size_t i = 0; i < missing.size() && i < kListCap; ++i) {
    if (i != 0) list += ", ";
    list += "job " + std::to_string(missing[i]);
    if (header_shards > 1) {
      list += strf(" (shard %d)",
                   static_cast<int>(missing[i] %
                                    static_cast<std::size_t>(header_shards)));
    }
  }
  if (missing.size() > kListCap) {
    list += strf(" ... and %zu more", missing.size() - kListCap);
  }
  throw std::runtime_error(
      strf("gather: %zu of %zu jobs missing from the input files: %s — a "
           "shard did not finish or its file was not passed in; `gather "
           "--partial` salvages what exists and writes a retry manifest",
           missing.size(), jobs, list.c_str()));
}

}  // namespace

GatherReport gather_shards_report(const GridSpec& spec,
                                  const std::vector<std::string>& files,
                                  const GatherOptions& options) {
  const GridPlan gp = build_plan(spec);
  const std::size_t jobs = gp.plan.job_count();
  const std::string want_fingerprint =
      strf("%016llx", static_cast<unsigned long long>(spec.fingerprint()));
  const bool partial = options.partial;

  GatherReport report;
  report.job_count = jobs;
  report.results.resize(jobs);
  report.have.assign(jobs, false);
  // FNV-1a over each accepted record's canonical bytes: the duplicate
  // guard.  A re-delivered record (reclaimed chunk, retried resume) must
  // hash identically; a mismatch is a determinism violation in any mode.
  std::vector<std::uint64_t> record_hash(jobs, 0);

  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in.good()) {
      if (!partial) throw std::runtime_error("gather: cannot open " + file);
      report.notes.push_back({file, 0, "cannot open; skipped"});
      continue;
    }
    std::string text;
    int line_no = 0;
    bool saw_header = false;
    bool skip_file = false;
    while (!skip_file && std::getline(in, text)) {
      ++line_no;
      if (text.empty()) continue;
      Value line;
      try {
        line = json::parse(text);
      } catch (const std::exception& e) {
        // A truncated tail (torn record from a crashed worker) or a
        // corrupt middle line: in partial mode note it and keep
        // scanning — every complete record in the file is salvageable.
        if (!partial) gather_fail(file, line_no, e.what());
        report.notes.push_back(
            {file, line_no, strf("unparseable line skipped: %s", e.what())});
        continue;
      }
      if (!saw_header) {
        // The first line must be the header — a file that starts with a
        // job record was truncated at the front or is not a shard file.
        std::string header_problem;
        try {
          if (line.at("format").as_string() != kShardResultFormat) {
            header_problem =
                "format is not " + std::string(kShardResultFormat);
          } else if (line.at("version").as_i64() != kShardFormatVersion) {
            header_problem =
                strf("unsupported shard format version %lld",
                     static_cast<long long>(line.at("version").as_i64()));
          } else if (line.at("spec_fingerprint").as_string() !=
                     want_fingerprint) {
            header_problem =
                "spec fingerprint mismatch (file was produced from a "
                "different spec than the one being gathered)";
          } else if (line.at("job_count").as_u64() != jobs) {
            header_problem = "job_count mismatch";
          }
        } catch (const std::exception& e) {
          header_problem = e.what();
        }
        if (!header_problem.empty()) {
          // Records under a wrong or unreadable header cannot be
          // trusted to belong to this spec: skip the whole file.
          if (!partial) format_fail(file, line_no, header_problem);
          report.notes.push_back(
              {file, line_no, header_problem + "; file skipped"});
          skip_file = true;
          continue;
        }
        if (const Value* shards = line.find("shards")) {
          try {
            const int n = static_cast<int>(shards->as_i64());
            report.header_shards = std::max(report.header_shards, n);
          } catch (const std::exception&) {
          }
        }
        saw_header = true;
        continue;
      }
      std::size_t job = 0;
      RunResult decoded;
      try {
        job = line.at("job").as_u64();
        if (job >= jobs) {
          if (!partial) {
            gather_fail(file, line_no,
                        strf("job index %zu out of range (plan has %zu "
                             "jobs)",
                             job, jobs));
          }
          report.notes.push_back(
              {file, line_no,
               strf("job index %zu out of range; skipped", job)});
          continue;
        }
        decoded = decode_run_result(line.at("result"));
      } catch (const std::exception& e) {
        if (!partial) gather_fail(file, line_no, e.what());
        report.notes.push_back(
            {file, line_no, strf("undecodable record skipped: %s", e.what())});
        continue;
      }
      const std::uint64_t hash = json::fnv1a(line.at("result").dump());
      if (report.have[job]) {
        if (record_hash[job] != hash) {
          // Never tolerated: two different results for one job breaks
          // the determinism guarantee the whole layer exists to keep.
          gather_fail(file, line_no,
                      strf("job %zu gathered twice with DIFFERENT bytes — "
                           "determinism violation, refusing to merge",
                           job));
        }
        if (!partial) {
          gather_fail(file, line_no,
                      strf("job %zu already gathered (duplicate across the "
                           "input files)",
                           job));
        }
        ++report.duplicates;  // idempotent re-delivery (reclaimed chunk)
        continue;
      }
      report.results[job] = std::move(decoded);
      report.have[job] = true;
      record_hash[job] = hash;
      ++report.records;
    }
    if (!saw_header && !skip_file) {
      if (!partial) {
        throw std::runtime_error("gather: " + file +
                                 ": empty file (missing header line)");
      }
      report.notes.push_back({file, 0, "no header line; file skipped"});
    }
  }

  for (std::size_t j = 0; j < jobs; ++j) {
    if (!report.have[j]) report.missing.push_back(j);
  }
  if (!partial && !report.missing.empty()) {
    fail_missing(report.missing, jobs, report.header_shards);
  }
  return report;
}

std::vector<RunResult> gather_shards(const GridSpec& spec,
                                     const std::vector<std::string>& files) {
  return std::move(gather_shards_report(spec, files, {}).results);
}

// -- retry manifest ----------------------------------------------------------

json::Value RetryManifest::to_json() const {
  Value o = Value::make_object();
  o.add("format", Value::make_string(kRetryManifestFormat));
  o.add("version", Value::make_i64(kShardFormatVersion));
  o.add("spec", spec.to_json());
  o.add("spec_fingerprint",
        Value::make_string(strf("%016llx", static_cast<unsigned long long>(
                                               spec.fingerprint()))));
  Value arr = Value::make_array();
  for (const std::size_t j : missing) arr.push_back(Value::make_u64(j));
  o.add("missing_jobs", std::move(arr));
  return o;
}

std::string RetryManifest::canonical_text() const { return to_json().dump(); }

RetryManifest RetryManifest::from_json(const json::Value& v) {
  if (v.at("format").as_string() != kRetryManifestFormat) {
    throw ShardFormatError("RetryManifest: not a " +
                           std::string(kRetryManifestFormat) + " document");
  }
  if (v.at("version").as_i64() != kShardFormatVersion) {
    throw ShardFormatError(
        strf("RetryManifest: unsupported version %lld (this build speaks %d)",
             static_cast<long long>(v.at("version").as_i64()),
             kShardFormatVersion));
  }
  RetryManifest m;
  m.spec = GridSpec::from_json(v.at("spec"));
  const std::string want = strf(
      "%016llx", static_cast<unsigned long long>(m.spec.fingerprint()));
  if (v.at("spec_fingerprint").as_string() != want) {
    throw ShardFormatError(
        "RetryManifest: embedded spec does not match its recorded "
        "fingerprint (manifest was edited or corrupted)");
  }
  const std::size_t jobs = build_plan(m.spec).plan.job_count();
  for (const Value& j : v.at("missing_jobs").as_array()) {
    m.missing.push_back(j.as_u64());
  }
  if (m.missing.empty()) {
    throw ShardFormatError("RetryManifest: missing_jobs is empty");
  }
  for (std::size_t i = 0; i < m.missing.size(); ++i) {
    if (m.missing[i] >= jobs ||
        (i > 0 && m.missing[i] <= m.missing[i - 1])) {
      throw ShardFormatError(
          "RetryManifest: missing_jobs must be strictly ascending and in "
          "range");
    }
  }
  return m;
}

RetryManifest RetryManifest::parse(std::string_view text) {
  return from_json(json::parse(text));
}

RetryManifest RetryManifest::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("RetryManifest: cannot open " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

RetryManifest make_retry_manifest(const GridSpec& spec,
                                  const GatherReport& report) {
  if (report.complete()) {
    throw std::logic_error(
        "make_retry_manifest: gather is complete, nothing to retry");
  }
  RetryManifest m;
  m.spec = spec;
  m.missing = report.missing;
  return m;
}

// -- finalize ----------------------------------------------------------------

std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<std::string>& policies,
                           const std::vector<double>& tolerances) {
  std::string csv =
      "app,mode,tolerance_pct,runs,exec_s_mean,exec_s_min,exec_s_max,"
      "avg_pkg_w_mean,avg_dram_w_mean,pkg_energy_j_mean,dram_energy_j_mean,"
      "total_energy_j_mean,slowdown_pct,pkg_power_savings_pct,"
      "dram_power_savings_pct,energy_change_pct,actuation_retries,"
      "actuation_failures,degradations,faults_injected\n";

  auto row = [&csv](const std::string& app, const std::string& mode,
                    double tol_pct, const RepeatedResult& r, double slowdown,
                    double pkg_savings, double dram_savings,
                    double energy_change) {
    csv += strf(
        "%s,%s,%.17g,%d,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
        "%.17g,%.17g,%.17g,%.17g,%llu,%llu,%llu,%llu\n",
        app.c_str(), mode.c_str(), tol_pct, r.runs, r.exec_seconds.mean,
        r.exec_seconds.min, r.exec_seconds.max, r.avg_pkg_power_w.mean,
        r.avg_dram_power_w.mean, r.pkg_energy_j.mean, r.dram_energy_j.mean,
        r.total_energy_j.mean, slowdown, pkg_savings, dram_savings,
        energy_change,
        static_cast<unsigned long long>(r.health.actuation_retries),
        static_cast<unsigned long long>(r.health.actuation_failures),
        static_cast<unsigned long long>(r.health.degradations),
        static_cast<unsigned long long>(r.health.faults_injected));
  };

  for (const Evaluation& ev : evals) {
    const std::string app = workloads::app_name(ev.app());
    // The baseline row keeps the legacy display name "default".
    row(app, core::to_string(PolicyMode::none), 0.0, ev.baseline(), 0.0, 0.0,
        0.0, 0.0);
    for (const std::string& policy : policies) {
      for (const double tol : tolerances) {
        row(app, policy, tol * 100.0, ev.at(policy, tol),
            ev.slowdown_pct(policy, tol),
            ev.pkg_power_savings_pct(policy, tol),
            ev.dram_power_savings_pct(policy, tol),
            ev.energy_change_pct(policy, tol));
      }
    }
  }
  return csv;
}

std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<PolicyMode>& modes,
                           const std::vector<double>& tolerances) {
  return evaluation_csv(evals, policy_names(modes), tolerances);
}

GridOutputs finalize_grid(const GridSpec& spec,
                          std::vector<RunResult> results) {
  GridOutputs out;

  // Telemetry is a per-job artifact that aggregation drops — extract it
  // before the results are consumed.  The merged exposition labels every
  // sample with its job index and stable-sorts by metric name, so the
  // bytes depend only on job identities, never on which shard ran what.
  if (spec.telemetry) {
    if (!results.empty() && results[0].telemetry.has_value()) {
      out.job0_telemetry = results[0].telemetry;
    }
    std::vector<telemetry::MetricSample> merged;
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (!results[j].telemetry.has_value()) continue;
      for (telemetry::MetricSample m : results[j].telemetry->metrics) {
        m.labels.emplace_back("job", std::to_string(j));
        merged.push_back(std::move(m));
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const telemetry::MetricSample& a,
                        const telemetry::MetricSample& b) {
                       return a.name < b.name;
                     });
    std::ostringstream prom;
    telemetry::write_prometheus(merged, prom);
    out.merged_prometheus = prom.str();
  }

  GridPlan gp = build_plan(spec);
  gp.plan.finish_with(std::move(results));
  out.evaluations =
      assemble_evaluations(gp.plan, gp.index, spec.policies, spec.tolerances);
  out.evaluation_csv =
      evaluation_csv(out.evaluations, spec.policies, spec.tolerances);
  return out;
}

GridOutputs run_grid_serial(const GridSpec& spec, int threads) {
  const GridPlan gp = build_plan(spec);
  std::vector<std::size_t> all(gp.plan.job_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  // Exactly the gather path: per-job results produced by the same
  // run_jobs, finalized by the same finish_with — serial ≡ gathered by
  // construction, and the tests byte-verify it anyway.
  return finalize_grid(spec, gp.plan.run_jobs(all, threads));
}

}  // namespace dufp::harness
