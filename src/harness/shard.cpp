#include "harness/shard.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.h"
#include "core/policy_registry.h"
#include "harness/shard_codec.h"
#include "telemetry/export.h"
#include "workloads/profiles.h"

namespace dufp::harness {

namespace {

using json::Value;

Value raw_double(double v) { return Value::make_raw_number(strf("%.17g", v)); }

}  // namespace

// -- GridSpec ----------------------------------------------------------------

json::Value GridSpec::to_json() const {
  Value o = Value::make_object();
  o.add("format", Value::make_string(kGridSpecFormat));
  o.add("version", Value::make_i64(kShardFormatVersion));
  o.add("name", Value::make_string(name));
  Value app_arr = Value::make_array();
  for (const auto app : apps) {
    app_arr.push_back(Value::make_string(workloads::app_name(app)));
  }
  o.add("apps", std::move(app_arr));
  // Key "modes" (not "policies"): the wire name predates the registry and
  // is pinned by the fingerprint of every existing spec.
  Value mode_arr = Value::make_array();
  for (const auto& policy : policies) {
    mode_arr.push_back(Value::make_string(policy));
  }
  o.add("modes", std::move(mode_arr));
  Value tol_arr = Value::make_array();
  for (const double tol : tolerances) tol_arr.push_back(raw_double(tol));
  o.add("tolerances", std::move(tol_arr));
  o.add("repetitions", Value::make_i64(repetitions));
  o.add("seed", Value::make_u64(seed));
  o.add("sockets", Value::make_i64(sockets));
  o.add("fault_rate", raw_double(fault_rate));
  o.add("fault_seed", Value::make_u64(fault_seed));
  o.add("telemetry", Value::make_bool(telemetry));
  return o;
}

std::string GridSpec::canonical_text() const { return to_json().dump(); }

std::uint64_t GridSpec::fingerprint() const {
  return json::fnv1a(canonical_text());
}

GridSpec GridSpec::from_json(const json::Value& v) {
  if (v.at("format").as_string() != kGridSpecFormat) {
    throw ShardFormatError("GridSpec: not a " + std::string(kGridSpecFormat) +
                           " document");
  }
  if (v.at("version").as_i64() != kShardFormatVersion) {
    throw ShardFormatError(
        strf("GridSpec: unsupported version %lld (this build speaks %d)",
             static_cast<long long>(v.at("version").as_i64()),
             kShardFormatVersion));
  }
  GridSpec spec;
  spec.name = v.at("name").as_string();
  spec.apps.clear();
  for (const Value& app : v.at("apps").as_array()) {
    spec.apps.push_back(workloads::app_by_name(app.as_string()));
  }
  for (const Value& mode : v.at("modes").as_array()) {
    spec.policies.push_back(mode.as_string());
  }
  for (const Value& tol : v.at("tolerances").as_array()) {
    spec.tolerances.push_back(tol.as_double());
  }
  spec.repetitions = static_cast<int>(v.at("repetitions").as_i64());
  spec.seed = v.at("seed").as_u64();
  spec.sockets = static_cast<int>(v.at("sockets").as_i64());
  spec.fault_rate = v.at("fault_rate").as_double();
  spec.fault_seed = v.at("fault_seed").as_u64();
  spec.telemetry = v.at("telemetry").as_bool();

  const auto problems = spec.validate();
  if (!problems.empty()) {
    std::string msg = "GridSpec: invalid spec:";
    for (std::size_t i = 0; i < problems.size(); ++i) {
      msg += (i == 0 ? " " : "; ") + problems[i];
    }
    throw ShardFormatError(msg);
  }
  // Canonicalize alias/case spellings so CSV labels, telemetry labels and
  // re-serialized specs all use the registry name.
  for (auto& policy : spec.policies) {
    policy = core::PolicyRegistry::instance().at(policy).name;
  }
  return spec;
}

GridSpec GridSpec::parse(std::string_view text) {
  return from_json(json::parse(text));
}

GridSpec GridSpec::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("GridSpec: cannot open " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

GridSpec GridSpec::reference() {
  GridSpec spec;
  spec.name = "reference";
  spec.apps = {workloads::AppId::cg, workloads::AppId::ep};
  spec.policies = {"DUF", "DUFP"};
  spec.tolerances = {0.05, 0.10};
  spec.repetitions = 3;
  spec.seed = 1;
  spec.sockets = 4;
  return spec;
}

std::vector<std::string> GridSpec::validate() const {
  std::vector<std::string> problems;
  if (name.empty()) problems.push_back("name is empty");
  if (apps.empty()) problems.push_back("apps is empty");
  if (policies.empty()) problems.push_back("modes is empty");
  // Every entry must resolve in the registry, exactly once: unknown and
  // duplicate names are each reported individually so one pass over the
  // error message fixes the whole list.
  const auto& registry = core::PolicyRegistry::instance();
  std::vector<std::string> seen;
  for (const auto& policy : policies) {
    const std::string key = to_lower(trim(policy));
    if (key == "default" || key == "none") {
      problems.push_back(
          "modes must not contain 'default' (the baseline is implicit)");
      continue;
    }
    const auto* entry = registry.find(policy);
    if (entry == nullptr) {
      problems.push_back("modes contains unknown policy \"" + policy +
                         "\" (known: " + registry.known_names() + ")");
      continue;
    }
    if (std::find(seen.begin(), seen.end(), entry->name) != seen.end()) {
      problems.push_back("modes contains duplicate policy \"" + policy +
                         "\"");
      continue;
    }
    seen.push_back(entry->name);
  }
  if (tolerances.empty()) problems.push_back("tolerances is empty");
  if (repetitions < 1) problems.push_back("repetitions must be >= 1");
  if (sockets < 1) problems.push_back("sockets must be >= 1");
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    problems.push_back("fault_rate must be in [0, 1]");
  }
  return problems;
}

WireIdentity GridSpec::wire_identity() const {
  WireIdentity id;
  id.format = kShardResultFormat;
  id.spec_name = name;
  id.fingerprint_hex =
      strf("%016llx", static_cast<unsigned long long>(fingerprint()));
  id.job_count = build_plan(*this).plan.job_count();
  return id;
}

// -- plan building -----------------------------------------------------------

GridPlan build_plan(const GridSpec& spec) {
  GridPlan gp;
  // Deliberately NOT default_run_config: that reads the environment
  // (DUFP_SOCKETS / DUFP_FAULT_RATE / ...), and a spec-driven plan must
  // be identical in every process regardless of its environment.
  const GridSpec& s = spec;
  gp.index = add_grid_cells(
      gp.plan, spec.apps, spec.policies, spec.tolerances, spec.repetitions,
      spec.seed, [&s](const workloads::WorkloadProfile& prof) {
        RunConfig cfg;
        cfg.profile = &prof;
        cfg.machine.sockets = s.sockets;
        if (s.fault_rate > 0.0) {
          cfg.faults = faults::FaultOptions::storm(s.fault_rate, s.fault_seed);
        }
        cfg.telemetry.enabled = s.telemetry;
        return cfg;
      });
  return gp;
}

// -- shard assignment --------------------------------------------------------

std::vector<std::size_t> shard_jobs_static(std::size_t job_count, int shards,
                                           int shard) {
  if (shards < 1 || shard < 0 || shard >= shards) {
    throw std::invalid_argument(
        strf("shard_jobs_static: shard %d of %d is out of range", shard,
             shards));
  }
  std::vector<std::size_t> indices;
  for (std::size_t j = static_cast<std::size_t>(shard); j < job_count;
       j += static_cast<std::size_t>(shards)) {
    indices.push_back(j);
  }
  return indices;
}

// -- shard worker ------------------------------------------------------------

void run_shard(const GridSpec& spec, const ShardRunOptions& options,
               std::ostream& out) {
  const GridPlan gp = build_plan(spec);
  WireIdentity id = spec.wire_identity();
  id.job_count = gp.plan.job_count();  // reuse the plan built above
  const int threads = options.threads;
  run_shard_wire(
      id, options,
      [&gp, threads](const std::vector<std::size_t>& indices) {
        const auto results = gp.plan.run_jobs(indices, threads);
        std::vector<Value> payloads;
        payloads.reserve(results.size());
        for (const RunResult& r : results) {
          payloads.push_back(encode_run_result(r));
        }
        return payloads;
      },
      out);
}

// -- gather ------------------------------------------------------------------

GatherReport gather_shards_report(const GridSpec& spec,
                                  const std::vector<std::string>& files,
                                  const GatherOptions& options) {
  const WireIdentity id = spec.wire_identity();

  GatherReport report;
  report.results.resize(id.job_count);
  WireGatherReport wire = gather_wire(
      id, files, options, [&report](std::size_t job, const Value& result) {
        report.results[job] = decode_run_result(result);
      });

  report.job_count = wire.job_count;
  report.have = std::move(wire.have);
  report.missing = std::move(wire.missing);
  report.records = wire.records;
  report.duplicates = wire.duplicates;
  report.notes = std::move(wire.notes);
  report.header_shards = wire.header_shards;
  return report;
}

std::vector<RunResult> gather_shards(const GridSpec& spec,
                                     const std::vector<std::string>& files) {
  return std::move(gather_shards_report(spec, files, {}).results);
}

// -- retry manifest ----------------------------------------------------------

json::Value RetryManifest::to_json() const {
  Value o = Value::make_object();
  o.add("format", Value::make_string(kRetryManifestFormat));
  o.add("version", Value::make_i64(kShardFormatVersion));
  o.add("spec", spec.to_json());
  o.add("spec_fingerprint",
        Value::make_string(strf("%016llx", static_cast<unsigned long long>(
                                               spec.fingerprint()))));
  Value arr = Value::make_array();
  for (const std::size_t j : missing) arr.push_back(Value::make_u64(j));
  o.add("missing_jobs", std::move(arr));
  return o;
}

std::string RetryManifest::canonical_text() const { return to_json().dump(); }

RetryManifest RetryManifest::from_json(const json::Value& v) {
  if (v.at("format").as_string() != kRetryManifestFormat) {
    throw ShardFormatError("RetryManifest: not a " +
                           std::string(kRetryManifestFormat) + " document");
  }
  if (v.at("version").as_i64() != kShardFormatVersion) {
    throw ShardFormatError(
        strf("RetryManifest: unsupported version %lld (this build speaks %d)",
             static_cast<long long>(v.at("version").as_i64()),
             kShardFormatVersion));
  }
  RetryManifest m;
  m.spec = GridSpec::from_json(v.at("spec"));
  const std::string want = strf(
      "%016llx", static_cast<unsigned long long>(m.spec.fingerprint()));
  if (v.at("spec_fingerprint").as_string() != want) {
    throw ShardFormatError(
        "RetryManifest: embedded spec does not match its recorded "
        "fingerprint (manifest was edited or corrupted)");
  }
  const std::size_t jobs = build_plan(m.spec).plan.job_count();
  for (const Value& j : v.at("missing_jobs").as_array()) {
    m.missing.push_back(j.as_u64());
  }
  if (m.missing.empty()) {
    throw ShardFormatError("RetryManifest: missing_jobs is empty");
  }
  for (std::size_t i = 0; i < m.missing.size(); ++i) {
    if (m.missing[i] >= jobs ||
        (i > 0 && m.missing[i] <= m.missing[i - 1])) {
      throw ShardFormatError(
          "RetryManifest: missing_jobs must be strictly ascending and in "
          "range");
    }
  }
  return m;
}

RetryManifest RetryManifest::parse(std::string_view text) {
  return from_json(json::parse(text));
}

RetryManifest RetryManifest::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("RetryManifest: cannot open " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

RetryManifest make_retry_manifest(const GridSpec& spec,
                                  const GatherReport& report) {
  if (report.complete()) {
    throw std::logic_error(
        "make_retry_manifest: gather is complete, nothing to retry");
  }
  RetryManifest m;
  m.spec = spec;
  m.missing = report.missing;
  return m;
}

// -- finalize ----------------------------------------------------------------

std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<std::string>& policies,
                           const std::vector<double>& tolerances) {
  std::string csv =
      "app,mode,tolerance_pct,runs,exec_s_mean,exec_s_min,exec_s_max,"
      "avg_pkg_w_mean,avg_dram_w_mean,pkg_energy_j_mean,dram_energy_j_mean,"
      "total_energy_j_mean,slowdown_pct,pkg_power_savings_pct,"
      "dram_power_savings_pct,energy_change_pct,actuation_retries,"
      "actuation_failures,degradations,faults_injected\n";

  auto row = [&csv](const std::string& app, const std::string& mode,
                    double tol_pct, const RepeatedResult& r, double slowdown,
                    double pkg_savings, double dram_savings,
                    double energy_change) {
    csv += strf(
        "%s,%s,%.17g,%d,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
        "%.17g,%.17g,%.17g,%.17g,%llu,%llu,%llu,%llu\n",
        app.c_str(), mode.c_str(), tol_pct, r.runs, r.exec_seconds.mean,
        r.exec_seconds.min, r.exec_seconds.max, r.avg_pkg_power_w.mean,
        r.avg_dram_power_w.mean, r.pkg_energy_j.mean, r.dram_energy_j.mean,
        r.total_energy_j.mean, slowdown, pkg_savings, dram_savings,
        energy_change,
        static_cast<unsigned long long>(r.health.actuation_retries),
        static_cast<unsigned long long>(r.health.actuation_failures),
        static_cast<unsigned long long>(r.health.degradations),
        static_cast<unsigned long long>(r.health.faults_injected));
  };

  for (const Evaluation& ev : evals) {
    const std::string app = workloads::app_name(ev.app());
    // The baseline row keeps the legacy display name "default".
    row(app, core::to_string(PolicyMode::none), 0.0, ev.baseline(), 0.0, 0.0,
        0.0, 0.0);
    for (const std::string& policy : policies) {
      for (const double tol : tolerances) {
        row(app, policy, tol * 100.0, ev.at(policy, tol),
            ev.slowdown_pct(policy, tol),
            ev.pkg_power_savings_pct(policy, tol),
            ev.dram_power_savings_pct(policy, tol),
            ev.energy_change_pct(policy, tol));
      }
    }
  }
  return csv;
}

std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<PolicyMode>& modes,
                           const std::vector<double>& tolerances) {
  return evaluation_csv(evals, policy_names(modes), tolerances);
}

GridOutputs finalize_grid(const GridSpec& spec,
                          std::vector<RunResult> results) {
  GridOutputs out;

  // Telemetry is a per-job artifact that aggregation drops — extract it
  // before the results are consumed.  The merged exposition labels every
  // sample with its job index and stable-sorts by metric name, so the
  // bytes depend only on job identities, never on which shard ran what.
  if (spec.telemetry) {
    if (!results.empty() && results[0].telemetry.has_value()) {
      out.job0_telemetry = results[0].telemetry;
    }
    std::vector<telemetry::MetricSample> merged;
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (!results[j].telemetry.has_value()) continue;
      for (telemetry::MetricSample m : results[j].telemetry->metrics) {
        m.labels.emplace_back("job", std::to_string(j));
        merged.push_back(std::move(m));
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const telemetry::MetricSample& a,
                        const telemetry::MetricSample& b) {
                       return a.name < b.name;
                     });
    std::ostringstream prom;
    telemetry::write_prometheus(merged, prom);
    out.merged_prometheus = prom.str();
  }

  GridPlan gp = build_plan(spec);
  gp.plan.finish_with(std::move(results));
  out.evaluations =
      assemble_evaluations(gp.plan, gp.index, spec.policies, spec.tolerances);
  out.evaluation_csv =
      evaluation_csv(out.evaluations, spec.policies, spec.tolerances);
  return out;
}

GridOutputs run_grid_serial(const GridSpec& spec, int threads) {
  const GridPlan gp = build_plan(spec);
  std::vector<std::size_t> all(gp.plan.job_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  // Exactly the gather path: per-job results produced by the same
  // run_jobs, finalized by the same finish_with — serial ≡ gathered by
  // construction, and the tests byte-verify it anyway.
  return finalize_grid(spec, gp.plan.run_jobs(all, threads));
}

}  // namespace dufp::harness
