// A faithful C++ mirror of the `powercap` library's RAPL interface
// (https://github.com/powercap/powercap, the library the paper uses for
// capping, Sec. IV-C): zones with numbered constraints, microwatt /
// microjoule / microsecond units, and the long_term / short_term
// constraint naming of intel-rapl sysfs.
//
// Implemented purely over the MsrDevice interface, so the same code drives
// the simulated backend here and would drive /dev/cpu/*/msr on hardware.
#pragma once

#include <cstdint>
#include <string>

#include "msr/device.h"
#include "msr/registers.h"

namespace dufp::powercap {

/// Constraint indices follow intel-rapl: 0 = long_term, 1 = short_term.
enum class ConstraintId : int { long_term = 0, short_term = 1 };

class Zone {
 public:
  virtual ~Zone() = default;

  virtual std::string name() const = 0;

  /// Monotonic energy counter in microjoules (wraps at
  /// max_energy_range_uj, like the sysfs file).
  virtual std::uint64_t energy_uj() const = 0;
  virtual std::uint64_t max_energy_range_uj() const = 0;

  virtual int num_constraints() const = 0;
  virtual std::string constraint_name(int constraint) const = 0;
  virtual std::uint64_t power_limit_uw(int constraint) const = 0;
  virtual void set_power_limit_uw(int constraint, std::uint64_t uw) = 0;
  virtual std::uint64_t time_window_us(int constraint) const = 0;
  virtual void set_time_window_us(int constraint, std::uint64_t us) = 0;

  virtual bool enabled() const = 0;
  virtual void set_enabled(bool on) = 0;

  // -- typed convenience wrappers (watts / seconds) ---------------------------
  double power_limit_w(ConstraintId c) const;
  void set_power_limit_w(ConstraintId c, double watts);
  double time_window_s(ConstraintId c) const;
  double energy_j() const;

  /// Microjoules elapsed between two `energy_uj()` readings, correct
  /// across a single `max_energy_range_uj()` wrap.  Every consumer that
  /// differences this zone's energy counter must go through here (or
  /// `dufp::wrap_delta` directly) — naive subtraction turns the wrap into
  /// an astronomically large unsigned delta.
  std::uint64_t energy_delta_uj(std::uint64_t before,
                                std::uint64_t after) const;
};

/// Package RAPL zone ("intel-rapl:<socket>"): both constraints enforced.
class PackageZone final : public Zone {
 public:
  explicit PackageZone(msr::MsrDevice& dev, int socket_id = 0);

  std::string name() const override;
  std::uint64_t energy_uj() const override;
  std::uint64_t max_energy_range_uj() const override;
  int num_constraints() const override { return 2; }
  std::string constraint_name(int constraint) const override;
  std::uint64_t power_limit_uw(int constraint) const override;
  void set_power_limit_uw(int constraint, std::uint64_t uw) override;
  std::uint64_t time_window_us(int constraint) const override;
  void set_time_window_us(int constraint, std::uint64_t us) override;
  bool enabled() const override;
  void set_enabled(bool on) override;

  /// TDP as reported by MSR_PKG_POWER_INFO.
  double tdp_w() const;

 private:
  msr::PowerLimit read_limit() const;
  void write_limit(const msr::PowerLimit& pl);

  msr::MsrDevice& dev_;
  int socket_id_;
  msr::RaplUnits units_;
};

/// DRAM RAPL subzone ("intel-rapl:<socket>:0").  Energy readable; limit
/// writes are accepted but have no effect — mirroring the paper's platform
/// where memory power capping is unavailable (Sec. II-B).
class DramZone final : public Zone {
 public:
  explicit DramZone(msr::MsrDevice& dev, int socket_id = 0);

  std::string name() const override;
  std::uint64_t energy_uj() const override;
  std::uint64_t max_energy_range_uj() const override;
  int num_constraints() const override { return 1; }
  std::string constraint_name(int constraint) const override;
  std::uint64_t power_limit_uw(int constraint) const override;
  void set_power_limit_uw(int constraint, std::uint64_t uw) override;
  std::uint64_t time_window_us(int constraint) const override;
  void set_time_window_us(int constraint, std::uint64_t us) override;
  bool enabled() const override { return false; }
  void set_enabled(bool on) override;

 private:
  msr::MsrDevice& dev_;
  int socket_id_;
  msr::RaplUnits units_;
};

}  // namespace dufp::powercap
