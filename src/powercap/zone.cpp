#include "powercap/zone.h"

#include <cmath>

#include "common/expect.h"
#include "common/units.h"

namespace dufp::powercap {

using namespace dufp::msr;

// ---------------------------------------------------------------------------
// Zone convenience wrappers
// ---------------------------------------------------------------------------

double Zone::power_limit_w(ConstraintId c) const {
  return uw_to_watts(power_limit_uw(static_cast<int>(c)));
}

void Zone::set_power_limit_w(ConstraintId c, double watts) {
  DUFP_EXPECT(watts > 0.0);
  set_power_limit_uw(static_cast<int>(c), watts_to_uw(watts));
}

double Zone::time_window_s(ConstraintId c) const {
  return static_cast<double>(time_window_us(static_cast<int>(c))) * 1e-6;
}

double Zone::energy_j() const { return uj_to_joules(energy_uj()); }

std::uint64_t Zone::energy_delta_uj(std::uint64_t before,
                                    std::uint64_t after) const {
  return wrap_delta(before, after, max_energy_range_uj());
}

// ---------------------------------------------------------------------------
// PackageZone
// ---------------------------------------------------------------------------

PackageZone::PackageZone(msr::MsrDevice& dev, int socket_id)
    : dev_(dev), socket_id_(socket_id) {
  units_ = decode_rapl_units(dev_.read(0, kMsrRaplPowerUnit));
}

std::string PackageZone::name() const {
  return "intel-rapl:" + std::to_string(socket_id_);
}

std::uint64_t PackageZone::energy_uj() const {
  const std::uint64_t raw = dev_.read(0, kMsrPkgEnergyStatus) & 0xFFFFFFFFULL;
  return static_cast<std::uint64_t>(static_cast<double>(raw) *
                                    units_.joules_per_unit() * 1e6);
}

std::uint64_t PackageZone::max_energy_range_uj() const {
  return static_cast<std::uint64_t>(4294967296.0 * units_.joules_per_unit() *
                                    1e6);
}

std::string PackageZone::constraint_name(int constraint) const {
  DUFP_EXPECT(constraint == 0 || constraint == 1);
  return constraint == 0 ? "long_term" : "short_term";
}

msr::PowerLimit PackageZone::read_limit() const {
  return decode_power_limit(dev_.read(0, kMsrPkgPowerLimit), units_);
}

void PackageZone::write_limit(const msr::PowerLimit& pl) {
  dev_.write(0, kMsrPkgPowerLimit, encode_power_limit(pl, units_));
}

std::uint64_t PackageZone::power_limit_uw(int constraint) const {
  DUFP_EXPECT(constraint == 0 || constraint == 1);
  const auto pl = read_limit();
  return watts_to_uw(constraint == 0 ? pl.long_term_w : pl.short_term_w);
}

void PackageZone::set_power_limit_uw(int constraint, std::uint64_t uw) {
  DUFP_EXPECT(constraint == 0 || constraint == 1);
  auto pl = read_limit();
  if (constraint == 0) {
    pl.long_term_w = uw_to_watts(uw);
  } else {
    pl.short_term_w = uw_to_watts(uw);
  }
  write_limit(pl);
}

std::uint64_t PackageZone::time_window_us(int constraint) const {
  DUFP_EXPECT(constraint == 0 || constraint == 1);
  const auto pl = read_limit();
  const double s =
      constraint == 0 ? pl.long_term_window_s : pl.short_term_window_s;
  return static_cast<std::uint64_t>(s * 1e6 + 0.5);
}

void PackageZone::set_time_window_us(int constraint, std::uint64_t us) {
  DUFP_EXPECT(constraint == 0 || constraint == 1);
  auto pl = read_limit();
  const double s = static_cast<double>(us) * 1e-6;
  if (constraint == 0) {
    pl.long_term_window_s = s;
  } else {
    pl.short_term_window_s = s;
  }
  write_limit(pl);
}

bool PackageZone::enabled() const {
  const auto pl = read_limit();
  return pl.long_term_enabled || pl.short_term_enabled;
}

void PackageZone::set_enabled(bool on) {
  auto pl = read_limit();
  pl.long_term_enabled = on;
  pl.short_term_enabled = on;
  write_limit(pl);
}

double PackageZone::tdp_w() const {
  return decode_power_info(dev_.read(0, kMsrPkgPowerInfo), units_).tdp_w;
}

// ---------------------------------------------------------------------------
// DramZone
// ---------------------------------------------------------------------------

DramZone::DramZone(msr::MsrDevice& dev, int socket_id)
    : dev_(dev), socket_id_(socket_id) {
  units_ = decode_rapl_units(dev_.read(0, kMsrRaplPowerUnit));
}

std::string DramZone::name() const {
  return "intel-rapl:" + std::to_string(socket_id_) + ":0";
}

std::uint64_t DramZone::energy_uj() const {
  const std::uint64_t raw = dev_.read(0, kMsrDramEnergyStatus) & 0xFFFFFFFFULL;
  return static_cast<std::uint64_t>(static_cast<double>(raw) *
                                    units_.joules_per_unit() * 1e6);
}

std::uint64_t DramZone::max_energy_range_uj() const {
  return static_cast<std::uint64_t>(4294967296.0 * units_.joules_per_unit() *
                                    1e6);
}

std::string DramZone::constraint_name(int constraint) const {
  DUFP_EXPECT(constraint == 0);
  return "long_term";
}

std::uint64_t DramZone::power_limit_uw(int constraint) const {
  DUFP_EXPECT(constraint == 0);
  const auto pl =
      decode_power_limit(dev_.read(0, kMsrDramPowerLimit), units_);
  return watts_to_uw(pl.long_term_w);
}

void DramZone::set_power_limit_uw(int constraint, std::uint64_t uw) {
  DUFP_EXPECT(constraint == 0);
  // Stored but never enforced: DRAM capping is unavailable on the paper's
  // platform (Sec. II-B), and the simulated PCU ignores this register.
  auto pl = decode_power_limit(dev_.read(0, kMsrDramPowerLimit), units_);
  pl.long_term_w = uw_to_watts(uw);
  dev_.write(0, kMsrDramPowerLimit, encode_power_limit(pl, units_));
}

std::uint64_t DramZone::time_window_us(int constraint) const {
  DUFP_EXPECT(constraint == 0);
  const auto pl =
      decode_power_limit(dev_.read(0, kMsrDramPowerLimit), units_);
  return static_cast<std::uint64_t>(pl.long_term_window_s * 1e6 + 0.5);
}

void DramZone::set_time_window_us(int constraint, std::uint64_t us) {
  DUFP_EXPECT(constraint == 0);
  auto pl = decode_power_limit(dev_.read(0, kMsrDramPowerLimit), units_);
  pl.long_term_window_s = static_cast<double>(us) * 1e-6;
  dev_.write(0, kMsrDramPowerLimit, encode_power_limit(pl, units_));
}

void DramZone::set_enabled(bool /*on*/) {
  // No-op: zone cannot be enabled on this platform.
}

}  // namespace dufp::powercap
