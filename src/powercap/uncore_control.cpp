#include "powercap/uncore_control.h"

#include "common/expect.h"

namespace dufp::powercap {

using namespace dufp::msr;

UncoreControl::UncoreControl(msr::MsrDevice& dev) : dev_(dev) {}

void UncoreControl::pin_mhz(double mhz) { set_window_mhz(mhz, mhz); }

void UncoreControl::set_window_mhz(double min_mhz, double max_mhz) {
  DUFP_EXPECT(min_mhz > 0.0 && max_mhz >= min_mhz);
  UncoreRatioLimit lim;
  lim.min_ratio = uncore_mhz_to_ratio(min_mhz);
  lim.max_ratio = uncore_mhz_to_ratio(max_mhz);
  dev_.write(0, kMsrUncoreRatioLimit, encode_uncore_ratio_limit(lim));
}

double UncoreControl::window_min_mhz() const {
  const auto lim =
      decode_uncore_ratio_limit(dev_.read(0, kMsrUncoreRatioLimit));
  return uncore_ratio_to_mhz(lim.min_ratio);
}

double UncoreControl::window_max_mhz() const {
  const auto lim =
      decode_uncore_ratio_limit(dev_.read(0, kMsrUncoreRatioLimit));
  return uncore_ratio_to_mhz(lim.max_ratio);
}

double UncoreControl::current_mhz() const {
  return uncore_ratio_to_mhz(
      decode_uncore_perf_status(dev_.read(0, kMsrUncorePerfStatus)));
}

}  // namespace dufp::powercap
