// Core P-state actuation over IA32_PERF_CTL — the direct
// frequency-control path used by the DUFP-F extension (the paper's
// Sec. VII future work: "better handling CPU frequency under power
// capping, instead of relying on power capping to change the CPU
// frequency").
#pragma once

#include "msr/device.h"
#include "msr/registers.h"

namespace dufp::powercap {

class PstateControl {
 public:
  explicit PstateControl(msr::MsrDevice& dev);

  /// Requests the given core clock (quantized to 100 MHz ratios by the
  /// hardware).  The effective clock is min(request, RAPL's own limit).
  void set_mhz(double mhz);

  /// Currently requested clock.
  double requested_mhz() const;

  /// Releases the request back to `max_mhz` (performance governor).
  void release(double max_mhz);

 private:
  msr::MsrDevice& dev_;
};

}  // namespace dufp::powercap
