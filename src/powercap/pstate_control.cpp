#include "powercap/pstate_control.h"

#include "common/expect.h"

namespace dufp::powercap {

using namespace dufp::msr;

PstateControl::PstateControl(msr::MsrDevice& dev) : dev_(dev) {}

void PstateControl::set_mhz(double mhz) {
  DUFP_EXPECT(mhz > 0.0);
  dev_.write(0, kIa32PerfCtl,
             encode_perf_ctl(static_cast<unsigned>(mhz / 100.0 + 0.5)));
}

double PstateControl::requested_mhz() const {
  return decode_perf_ctl(dev_.read(0, kIa32PerfCtl)) * 100.0;
}

void PstateControl::release(double max_mhz) { set_mhz(max_mhz); }

}  // namespace dufp::powercap
