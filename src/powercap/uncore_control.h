// Uncore frequency actuation over MSR 0x620, the access path DUF/DUFP use
// on hardware ("uncore frequency is directly accessed and modified through
// the MSR registers", Sec. IV-C).
#pragma once

#include "msr/device.h"
#include "msr/registers.h"

namespace dufp::powercap {

class UncoreControl {
 public:
  explicit UncoreControl(msr::MsrDevice& dev);

  /// Pins the uncore to a single frequency by writing min = max = `mhz`
  /// (the DUF actuation style).
  void pin_mhz(double mhz);

  /// Restores an explicit [min, max] window.
  void set_window_mhz(double min_mhz, double max_mhz);

  double window_min_mhz() const;
  double window_max_mhz() const;

  /// Current uncore clock from MSR_UNCORE_PERF_STATUS.
  double current_mhz() const;

 private:
  msr::MsrDevice& dev_;
};

}  // namespace dufp::powercap
