// Simulated RAPL firmware (the package control unit's power-limiting
// loop).  Runs at simulation-tick resolution (1 ms): maintains a running
// average of package power per constraint window and picks the highest
// core P-state whose predicted power respects every enabled constraint,
// with realistic slew limits.
//
// This reproduces the behaviours the paper leans on:
//  * enforcement is via core DVFS (Sec. II-B: "RAPL uses DVFS");
//  * the long-term constraint allows short excursions above the limit as
//    long as the window average complies; the short-term constraint
//    bounds those excursions;
//  * a freshly lowered cap takes tens of milliseconds to bite (Sec. IV-D:
//    "some time is needed to apply a new power cap"), because the window
//    average must drain and the P-state slews down step by step.
#pragma once

#include <optional>

#include "common/ring_buffer.h"
#include "msr/registers.h"

namespace dufp::hw {
class SocketModel;
}

namespace dufp::rapl {

struct GovernorParams {
  double tick_s = 0.001;  ///< control-loop period

  /// Correction aggressiveness: instantaneous allowance is
  /// limit + gain * (limit - window_average); >0 lets the package burst
  /// above a cold limit and forces under-shoot after an overshoot.
  double headroom_gain = 2.0;

  /// P-state slew: throttling is fast (thermal protection), unthrottling
  /// deliberate (avoids oscillation) — per tick, in MHz.
  double throttle_slew_mhz = 300.0;
  double unthrottle_slew_mhz = 100.0;
};

class FirmwareGovernor {
 public:
  FirmwareGovernor(hw::SocketModel& socket, const GovernorParams& params);

  /// Installs new constraints (from an MSR 0x610 write).  Re-sizes the
  /// averaging windows; accumulated history within the old windows is
  /// kept where it fits.
  void set_limit(const msr::PowerLimit& limit);
  const msr::PowerLimit& limit() const { return limit_; }

  /// Chooses and applies the core-frequency limit for the next tick.
  /// Call once per tick, before the socket is evaluated.
  void tick();

  /// Feeds the power actually drawn over the tick just simulated.
  void record_power(double pkg_power_w, double dt_s);

  /// Window averages (diagnostics / tests).
  double long_term_avg_w() const { return long_window_.mean(); }
  double short_term_avg_w() const { return short_window_.mean(); }

  /// Frequency limit currently applied (MHz).
  double current_limit_mhz() const { return current_limit_mhz_; }

 private:
  /// Highest quantized core frequency with predicted power <= allowance.
  double highest_compliant_mhz(double allowance_w) const;

  std::size_t window_ticks(double window_s) const;

  hw::SocketModel& socket_;
  GovernorParams params_;
  msr::PowerLimit limit_;
  WindowedMean long_window_;
  WindowedMean short_window_;
  double current_limit_mhz_;
};

}  // namespace dufp::rapl
