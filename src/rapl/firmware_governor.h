// Simulated RAPL firmware (the package control unit's power-limiting
// loop).  Runs at simulation-tick resolution (1 ms): maintains a running
// average of package power per constraint window and picks the highest
// core P-state whose predicted power respects every enabled constraint,
// with realistic slew limits.
//
// This reproduces the behaviours the paper leans on:
//  * enforcement is via core DVFS (Sec. II-B: "RAPL uses DVFS");
//  * the long-term constraint allows short excursions above the limit as
//    long as the window average complies; the short-term constraint
//    bounds those excursions;
//  * a freshly lowered cap takes tens of milliseconds to bite (Sec. IV-D:
//    "some time is needed to apply a new power cap"), because the window
//    average must drain and the P-state slews down step by step.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/ring_buffer.h"
#include "hwmodel/demand.h"
#include "hwmodel/socket_model.h"
#include "msr/registers.h"
#include "rapl/cell_cache.h"

namespace dufp::rapl {

struct GovernorParams {
  double tick_s = 0.001;  ///< control-loop period

  /// Correction aggressiveness: instantaneous allowance is
  /// limit + gain * (limit - window_average); >0 lets the package burst
  /// above a cold limit and forces under-shoot after an overshoot.
  double headroom_gain = 2.0;

  /// P-state slew: throttling is fast (thermal protection), unthrottling
  /// deliberate (avoids oscillation) — per tick, in MHz.
  double throttle_slew_mhz = 300.0;
  double unthrottle_slew_mhz = 100.0;
};

class FirmwareGovernor {
 public:
  FirmwareGovernor(hw::SocketModel& socket, const GovernorParams& params);

  /// Installs new constraints (from an MSR 0x610 write).  Re-sizes the
  /// averaging windows; accumulated history within the old windows is
  /// kept where it fits.
  void set_limit(const msr::PowerLimit& limit);
  const msr::PowerLimit& limit() const { return limit_; }

  /// Chooses and applies the core-frequency limit for the next tick.
  /// Call once per tick, before the socket is evaluated.
  void tick();

  /// Feeds the power actually drawn over the tick just simulated.
  void record_power(double pkg_power_w, double dt_s) {
    DUFP_EXPECT(dt_s > 0.0);
    DUFP_EXPECT(pkg_power_w >= 0.0);
    long_window_.add(pkg_power_w);
    short_window_.add(pkg_power_w);
  }

  /// Window averages (diagnostics / tests).
  double long_term_avg_w() const { return long_window_.mean(); }
  double short_term_avg_w() const { return short_window_.mean(); }

  /// Frequency limit currently applied (MHz).
  double current_limit_mhz() const { return current_limit_mhz_; }

  /// True when the governor is at a bitwise fixed point under a constant
  /// recorded package power of `pkg_power_w`: both averaging windows are
  /// full of exactly that value with a round-off-stable running sum, and
  /// re-running the control decision would reproduce the currently
  /// applied frequency limit bit for bit.  While this holds, a
  /// tick()+record_power(pkg_power_w) cycle changes no observable
  /// governor or socket state — the precondition the simulation's
  /// event-leaping fast path relies on to skip the control loop entirely.
  bool steady_state(double pkg_power_w) const;

  /// O(1) pre-gate for steady_state: both windows consist entirely of one
  /// bitwise-identical value.  Cheap enough to poll every tick.
  bool windows_uniform() const {
    return long_window_.full() &&
           long_window_.run_length() >= long_window_.capacity() &&
           short_window_.full() &&
           short_window_.run_length() >= short_window_.capacity();
  }

  /// Calm-tick fast path for the simulation engine.  Performs, in one
  /// call, the exact observable work of a tick()+record_power(recorded_w)
  /// pair *provided the control decision would keep the current frequency
  /// limit* — and refuses (returning false, touching nothing) otherwise.
  ///
  /// The decision is the cell-table decision tick() itself uses (see
  /// planned_limit_mhz); for a calm tick it costs a couple of comparisons
  /// against cached cell edges instead of a bisection.  Defined here so
  /// the engine's calm-stretch loop inlines it.
  bool fast_calm_tick(double recorded_w) {
    // Calm ⟺ the decision tick() would take keeps the applied limit, i.e.
    // the allowance lies in the applied limit's own cell (the P-state
    // search returns the limit, no slew applies, and quantization of a
    // grid point is the identity).
    if (calm_limit_ != current_limit_mhz_ ||
        calm_version_ != socket_.state_version()) {
      refresh_calm_cell();
    }
    // A non-finite allowance plans core_max in the reference decision;
    // +inf matches the test exactly (it passes only for the top state),
    // and the never-occurring NaN / -inf fail every comparison and merely
    // fall back to the exact path.
    const double a = current_allowance();
    if (!(a >= calm_lo_ && (calm_top_ || a < calm_hi_))) return false;
    // tick() would re-apply the unchanged limit (a no-op write: the
    // socket setter compares before invalidating); record_power() would
    // push the tick's power into both windows.  Only the pushes are
    // observable.
    long_window_.add(recorded_w);
    short_window_.add(recorded_w);
    return true;
  }

  /// The control decision of tick() without the actuation: the quantized
  /// frequency limit the governor would apply given the current windows.
  ///
  /// Computed without running the P-state search: the allowance axis
  /// partitions into cells on which the search output is constant (it is
  /// a monotone step function of the allowance), and the exact cell
  /// edges — the precise doubles where the search output flips, pinned
  /// by bisecting the IEEE-754 bit lattice with probes of the real
  /// search — are cached per P-state, keyed on the uncore window and the
  /// phase demand (the search's only other inputs).  Locating the
  /// allowance's cell costs a few comparisons; the bisection runs only
  /// when an edge is first needed for a never-seen socket state.
  double planned_limit_mhz() const;

  /// Reference implementation of the same decision via a fresh P-state
  /// search (the pre-cell-table code path).  Exposed so equivalence
  /// tests can check the cached decision bit-for-bit; not used on any
  /// engine path.
  double planned_limit_reference_mhz() const;

  /// Cell-table economics of this governor since construction: cold edge
  /// builds, probes spent inside them, hits served by the process-wide
  /// shared cache, way evictions.  A pure observer — reading it never
  /// perturbs the cache.
  const CellStats& cell_stats() const { return cell_stats_; }

 private:
  /// One cached edge of the allowance→P-state partition: the exact
  /// double where the P-state search first reaches the state `idx` steps
  /// above core_min.  Keyed on the inputs the search depends on besides
  /// the allowance, so edges survive a DUFP controller hunting the
  /// uncore window and workloads revisiting phases; kCellWays
  /// alternatives per state cover a controller alternating between a few
  /// operating points without thrash.
  struct CellSlot {
    std::uint64_t version = 0;  ///< state version at last confirmation
    double unc_min = 0.0;       ///< uncore window the edge was built for
    double unc_max = 0.0;
    hw::PhaseDemand demand;     ///< demand the edge was built for
    double edge = 0.0;
    bool valid = false;
  };
  /// A DUFP controller's uncore hunt sweeps the full ratio range (a dozen
  /// or more distinct windows), so the ways must cover the whole sweep or
  /// the cache thrashes and the edge bisection dominates the run again.
  /// Hits are moved to the front, keeping the common case one compare.
  static constexpr std::size_t kCellWays = 24;

  /// Instantaneous allowance from the current window averages — the
  /// first half of the control decision.  Runs once per socket per calm
  /// tick, hence inline.
  double current_allowance() const {
    double allowance = std::numeric_limits<double>::infinity();
    if (limit_.long_term_enabled && limit_.long_term_w > 0.0) {
      const double avg = long_window_.full() || long_window_.size() > 0
                             ? long_window_.mean()
                             : limit_.long_term_w;
      allowance =
          std::min(allowance,
                   limit_.long_term_w +
                       params_.headroom_gain * (limit_.long_term_w - avg));
    }
    if (limit_.short_term_enabled && limit_.short_term_w > 0.0) {
      const double avg = short_window_.size() > 0 ? short_window_.mean()
                                                  : limit_.short_term_w;
      allowance =
          std::min(allowance,
                   limit_.short_term_w +
                       params_.headroom_gain * (limit_.short_term_w - avg));
    }
    return allowance;
  }
  /// Refills the flat calm-cell members (calm_lo_/calm_hi_/calm_top_)
  /// from the cell table for the currently applied limit.
  void refresh_calm_cell();
  /// Reference second half of the decision: fresh P-state search, slew,
  /// quantization.
  double planned_from_allowance(double allowance_w) const;
  /// Cell-table second half: bit-identical to planned_from_allowance by
  /// construction (exact cached edges; slew/quantization shared).
  double planned_cached(double allowance_w) const;

  /// Edge of cell `idx` for the socket's current state (lazily built,
  /// cached in cells_; way misses consult the process-wide
  /// SharedCellCache before falling back to the bisection).  -inf when
  /// every allowance reaches the state, +inf when none does.
  double cell_edge(std::size_t idx) const;
  /// Smallest allowance for which the P-state search reaches grid state
  /// `idx`, pinned to the exact flipping double by bit-lattice bisection.
  double lowest_allowance_reaching(std::size_t idx) const;
  /// P-state `idx` in MHz, evaluated with the exact FP expression the
  /// search's grid flooring produces.
  double grid_mhz(std::size_t idx) const;

  /// Highest quantized core frequency with predicted power <= allowance.
  double highest_compliant_mhz(double allowance_w) const;

  std::size_t window_ticks(double window_s) const;

  hw::SocketModel& socket_;
  GovernorParams params_;
  msr::PowerLimit limit_;
  WindowedMean long_window_;
  WindowedMean short_window_;
  double current_limit_mhz_;
  /// Cell-edge cache, kCellWays recency-ordered slots per P-state
  /// (planned_limit_mhz is const — the lazily built cache is an
  /// invisible memo).
  mutable std::vector<CellSlot> cells_;
  /// This socket config's SharedCellCache id, interned at construction
  /// so the in-run cache paths never allocate.
  std::uint32_t shared_cfg_ = 0;
  /// Economics counters (see cell_stats()); mutable for the same reason
  /// cells_ is — the decision paths are const.
  mutable CellStats cell_stats_;

  /// The applied limit's own cell, flattened into members so the calm
  /// test is two comparisons with no cache lookup; revalidated by
  /// (limit, socket state version).
  mutable double calm_lo_ = 0.0;
  mutable double calm_hi_ = 0.0;
  mutable bool calm_top_ = false;  ///< limit is the top state: no upper edge
  mutable double calm_limit_ = -1.0;
  mutable std::uint64_t calm_version_ = 0;
};

}  // namespace dufp::rapl
