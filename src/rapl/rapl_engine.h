// The simulated package control unit: exposes the RAPL and uncore MSRs on
// a SimulatedMsr device and enforces the programmed limits on a
// SocketModel through the firmware governor.
//
// Register map provided (per socket):
//   0x606 MSR_RAPL_POWER_UNIT     read-only, Skylake-SP units
//   0x610 MSR_PKG_POWER_LIMIT     r/w, drives the firmware governor
//   0x611 MSR_PKG_ENERGY_STATUS   dynamic, 32-bit wrapping counter
//   0x614 MSR_PKG_POWER_INFO      read-only (TDP etc.)
//   0x618 MSR_DRAM_POWER_LIMIT    r/w but *inactive*: the paper's platform
//                                 does not support DRAM capping (Sec. II-B)
//   0x619 MSR_DRAM_ENERGY_STATUS  dynamic
//   0x620 MSR_UNCORE_RATIO_LIMIT  r/w, clamps the socket's uncore window
//   0x621 MSR_UNCORE_PERF_STATUS  dynamic, current uncore ratio
//   0xE7/0xE8 IA32_MPERF/APERF    dynamic, per-core cycle counters
#pragma once

#include "hwmodel/socket_model.h"
#include "msr/registers.h"
#include "msr/sim_msr.h"
#include "rapl/firmware_governor.h"

namespace dufp::rapl {

class RaplEngine {
 public:
  RaplEngine(hw::SocketModel& socket, msr::SimulatedMsr& msr,
             const GovernorParams& params = {});

  RaplEngine(const RaplEngine&) = delete;
  RaplEngine& operator=(const RaplEngine&) = delete;

  /// Firmware control step; call once per simulation tick before the
  /// socket is evaluated.
  void tick() { governor_.tick(); }

  /// Accounting step; call once per tick after the socket was evaluated.
  void record(const hw::SocketInstant& instant, double dt_s) {
    governor_.record_power(instant.pkg_power_w, dt_s);
  }

  const msr::RaplUnits& units() const { return units_; }
  const FirmwareGovernor& governor() const { return governor_; }
  FirmwareGovernor& governor() { return governor_; }

  /// Currently programmed package limit (decoded).
  msr::PowerLimit package_limit() const;

 private:
  void install_registers();

  hw::SocketModel& socket_;
  msr::SimulatedMsr& msr_;
  msr::RaplUnits units_;
  FirmwareGovernor governor_;
};

}  // namespace dufp::rapl
