#include "rapl/rapl_engine.h"

#include <cstdint>

namespace dufp::rapl {

using namespace dufp::msr;

RaplEngine::RaplEngine(hw::SocketModel& socket, msr::SimulatedMsr& msr,
                       const GovernorParams& params)
    : socket_(socket), msr_(msr), governor_(socket, params) {
  install_registers();
}

void RaplEngine::install_registers() {
  const auto& cfg = socket_.config();

  msr_.define_register(kMsrRaplPowerUnit, encode_rapl_units(units_),
                       /*writable=*/false);

  // Package power limit: storage register; writes re-program the governor.
  PowerLimit def;
  def.long_term_w = cfg.long_term_default_w;
  def.long_term_window_s = cfg.long_term_window_s;
  def.long_term_enabled = true;
  def.long_term_clamped = true;
  def.short_term_w = cfg.short_term_default_w;
  def.short_term_window_s = cfg.short_term_window_s;
  def.short_term_enabled = true;
  def.short_term_clamped = true;
  msr_.define_register(kMsrPkgPowerLimit, encode_power_limit(def, units_));
  // Lock-bit semantics: once a programmed limit has bit 63 set, further
  // writes fault until reset — the BIOS-locked-PL failure mode real
  // controllers must survive.
  msr_.set_write_guard(kMsrPkgPowerLimit, [this](int, std::uint64_t) {
    if (decode_power_limit(msr_.peek(kMsrPkgPowerLimit), units_).locked) {
      throw MsrError(kMsrPkgPowerLimit,
                     "power-limit register locked (PL lock bit set)");
    }
  });
  msr_.on_write(kMsrPkgPowerLimit, [this](int, std::uint64_t raw) {
    governor_.set_limit(decode_power_limit(raw, units_));
  });

  PowerInfo info;
  info.tdp_w = cfg.tdp_w;
  info.min_power_w = 60.0;
  info.max_power_w = 2.0 * cfg.tdp_w;
  msr_.define_register(kMsrPkgPowerInfo, encode_power_info(info, units_),
                       /*writable=*/false);

  // Energy status counters: computed from the socket's ground-truth
  // accumulators, truncated to 32 bits (they wrap like hardware).
  msr_.define_dynamic(kMsrPkgEnergyStatus, [this](int) {
    return joules_to_energy_units(socket_.pkg_energy_j(), units_) &
           0xFFFFFFFFULL;
  });
  msr_.define_dynamic(kMsrDramEnergyStatus, [this](int) {
    return joules_to_energy_units(socket_.dram_energy_j(), units_) &
           0xFFFFFFFFULL;
  });

  // DRAM power limit: accepted but not enforced — the paper's platform
  // does not support memory capping, and neither do we (Sec. II-B).
  msr_.define_register(kMsrDramPowerLimit, 0);

  // Uncore ratio window.
  UncoreRatioLimit ur;
  ur.min_ratio = uncore_mhz_to_ratio(cfg.uncore_min_mhz);
  ur.max_ratio = uncore_mhz_to_ratio(cfg.uncore_max_mhz);
  msr_.define_register(kMsrUncoreRatioLimit, encode_uncore_ratio_limit(ur));
  msr_.on_write(kMsrUncoreRatioLimit, [this](int, std::uint64_t raw) {
    const auto lim = decode_uncore_ratio_limit(raw);
    socket_.set_uncore_window_mhz(uncore_ratio_to_mhz(lim.min_ratio),
                                  uncore_ratio_to_mhz(lim.max_ratio));
  });

  msr_.define_dynamic(kMsrUncorePerfStatus, [this](int) {
    return encode_uncore_perf_status(
        uncore_mhz_to_ratio(socket_.effective_uncore_mhz()));
  });

  // APERF/MPERF (all cores share the model's package clock).
  msr_.define_dynamic(kIa32Aperf, [this](int) { return socket_.aperf_cycles(); });
  msr_.define_dynamic(kIa32Mperf, [this](int) { return socket_.mperf_cycles(); });

  // IA32_PERF_CTL: explicit P-state requests (the DUFP-F extension path).
  msr_.define_register(
      kIa32PerfCtl,
      encode_perf_ctl(static_cast<unsigned>(cfg.core_max_mhz / 100.0 + 0.5)));
  msr_.on_write(kIa32PerfCtl, [this](int, std::uint64_t raw) {
    socket_.set_user_pstate_limit_mhz(decode_perf_ctl(raw) * 100.0);
  });
}

msr::PowerLimit RaplEngine::package_limit() const {
  return decode_power_limit(msr_.peek(kMsrPkgPowerLimit), units_);
}

}  // namespace dufp::rapl
