#include "rapl/cell_cache.h"

#include <cstdlib>
#include <cstring>

namespace dufp::rapl {

namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

/// The numeric fields the edge computation reads, compared exactly (bit
/// patterns via ==; configs are program constants, never NaN).  Listed
/// explicitly so adding a SocketConfig field forces a conscious decision
/// here: does it reach the power model / grid geometry or not?
bool same_edge_inputs(const hw::SocketConfig& a, const hw::SocketConfig& b) {
  const auto& pa = a.power;
  const auto& pb = b.power;
  const auto& ma = a.memory;
  const auto& mb = b.memory;
  return a.cores == b.cores && a.core_min_mhz == b.core_min_mhz &&
         a.core_max_mhz == b.core_max_mhz &&
         a.core_base_mhz == b.core_base_mhz &&
         a.core_step_mhz == b.core_step_mhz &&
         a.uncore_min_mhz == b.uncore_min_mhz &&
         a.uncore_max_mhz == b.uncore_max_mhz &&
         a.uncore_step_mhz == b.uncore_step_mhz &&
         pa.static_w == pb.static_w && pa.core_idle_w == pb.core_idle_w &&
         pa.core_dyn_w == pb.core_dyn_w && pa.v_slope == pb.v_slope &&
         pa.v_min_frac == pb.v_min_frac &&
         pa.uncore_base_w == pb.uncore_base_w &&
         pa.uncore_act_w == pb.uncore_act_w &&
         pa.uncore_alpha == pb.uncore_alpha &&
         pa.dram_background_w == pb.dram_background_w &&
         pa.dram_w_per_gbps == pb.dram_w_per_gbps &&
         ma.peak_bw_gbps == mb.peak_bw_gbps &&
         ma.fu_sat_mhz == mb.fu_sat_mhz && ma.conc_base == mb.conc_base &&
         ma.conc_slope == mb.conc_slope &&
         ma.prefetch_coeff == mb.prefetch_coeff;
}

/// Fixed table geometry: 2^15 slots at 3/4 max load ≈ 24k resident
/// edges (a full tournament grid pins a few thousand distinct edges) in
/// ~4 MB, allocated once so the in-run paths never touch the heap.
constexpr std::size_t kSlotBits = 15;
constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
constexpr std::size_t kMaxResident = kSlots - kSlots / 4;

std::uint64_t hash_key(const SharedCellCache::Key& k) {
  // FNV-1a over the key words; cheap and fine for a process-local table.
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint64_t w : k) {
    for (int b = 0; b < 8; ++b) {
      h ^= (w >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace

SharedCellCache::SharedCellCache() : slots_(kSlots) {
  const char* env = std::getenv("DUFP_SHARED_CELL_CACHE");
  enabled_ = env == nullptr || std::strcmp(env, "0") != 0;
}

SharedCellCache& SharedCellCache::instance() {
  static SharedCellCache cache;
  return cache;
}

std::uint32_t SharedCellCache::intern_config(const hw::SocketConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (same_edge_inputs(configs_[i], cfg)) {
      return static_cast<std::uint32_t>(i);
    }
  }
  configs_.push_back(cfg);
  return static_cast<std::uint32_t>(configs_.size() - 1);
}

SharedCellCache::Key SharedCellCache::make_key(std::uint32_t config_id,
                                               std::size_t idx,
                                               double unc_min, double unc_max,
                                               const hw::PhaseDemand& d) {
  return Key{config_id,
             static_cast<std::uint64_t>(idx),
             bits_of(unc_min),
             bits_of(unc_max),
             bits_of(d.w_cpu),
             bits_of(d.w_mem),
             bits_of(d.w_unc),
             bits_of(d.w_fixed),
             bits_of(d.flops_rate_ref),
             bits_of(d.bytes_rate_ref),
             bits_of(d.cpu_activity),
             bits_of(d.mem_activity),
             d.idle ? 1u : 0u};
}

/// Linear probe to the key's slot (used, matching) or its insertion
/// point (first unused slot of the probe chain).  The table never runs
/// truly full — inserts stop at kMaxResident — so the walk terminates.
std::size_t SharedCellCache::probe_locked(const Key& key) const {
  std::size_t i = static_cast<std::size_t>(hash_key(key)) & (kSlots - 1);
  while (slots_[i].used && slots_[i].key != key) {
    i = (i + 1) & (kSlots - 1);
  }
  return i;
}

bool SharedCellCache::lookup(const Key& key, double* edge) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return false;
  const Slot& slot = slots_[probe_locked(key)];
  if (!slot.used) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *edge = slot.edge;
  return true;
}

void SharedCellCache::insert(const Key& key, double edge) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  Slot& slot = slots_[probe_locked(key)];
  // First writer wins; a racing build computed the identical bits.
  if (slot.used) return;
  if (resident_ >= kMaxResident) {
    ++stats_.full_drops;
    return;
  }
  slot.key = key;
  slot.edge = edge;
  slot.used = true;
  ++resident_;
  ++stats_.inserts;
}

bool SharedCellCache::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void SharedCellCache::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

void SharedCellCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Interned configs survive: governors hold their dense ids for the
  // process lifetime, and recycling an id would alias two different
  // configs under one key.  Only the edges (and stats) reset.
  for (Slot& slot : slots_) slot.used = false;
  resident_ = 0;
  stats_ = GlobalStats{};
}

SharedCellCache::GlobalStats SharedCellCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GlobalStats out = stats_;
  out.entries = resident_;
  return out;
}

}  // namespace dufp::rapl
