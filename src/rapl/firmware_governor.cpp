#include "rapl/firmware_governor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/expect.h"
#include "hwmodel/socket_model.h"

namespace dufp::rapl {

FirmwareGovernor::FirmwareGovernor(hw::SocketModel& socket,
                                   const GovernorParams& params)
    : socket_(socket),
      params_(params),
      long_window_(window_ticks(1.0)),
      short_window_(window_ticks(0.01)),
      current_limit_mhz_(socket.config().core_max_mhz) {
  DUFP_EXPECT(params.tick_s > 0.0);
  // Start from the hardware default constraints.
  msr::PowerLimit def;
  def.long_term_w = socket.config().long_term_default_w;
  def.long_term_window_s = socket.config().long_term_window_s;
  def.long_term_enabled = true;
  def.long_term_clamped = true;
  def.short_term_w = socket.config().short_term_default_w;
  def.short_term_window_s = socket.config().short_term_window_s;
  def.short_term_enabled = true;
  def.short_term_clamped = true;
  set_limit(def);
}

std::size_t FirmwareGovernor::window_ticks(double window_s) const {
  const double ticks = window_s / params_.tick_s;
  return static_cast<std::size_t>(std::max(1.0, std::round(ticks)));
}

void FirmwareGovernor::set_limit(const msr::PowerLimit& limit) {
  limit_ = limit;
  const std::size_t lw = window_ticks(limit.long_term_window_s);
  const std::size_t sw = window_ticks(limit.short_term_window_s);
  // Re-create windows only when the span changed; otherwise preserve the
  // accumulated history (a cap change must not forget recent consumption,
  // or a decrease would be toothless for a full window).
  if (lw != 0 && lw != long_window_.capacity()) {
    long_window_ = WindowedMean(lw);
  }
  if (sw != 0 && sw != short_window_.capacity()) {
    short_window_ = WindowedMean(sw);
  }
}

void FirmwareGovernor::tick() {
  double allowance = std::numeric_limits<double>::infinity();
  if (limit_.long_term_enabled && limit_.long_term_w > 0.0) {
    const double avg = long_window_.full() || long_window_.size() > 0
                           ? long_window_.mean()
                           : limit_.long_term_w;
    allowance = std::min(allowance,
                         limit_.long_term_w +
                             params_.headroom_gain * (limit_.long_term_w - avg));
  }
  if (limit_.short_term_enabled && limit_.short_term_w > 0.0) {
    const double avg = short_window_.size() > 0 ? short_window_.mean()
                                                : limit_.short_term_w;
    allowance = std::min(allowance,
                         limit_.short_term_w + params_.headroom_gain *
                                                   (limit_.short_term_w - avg));
  }

  const auto& cfg = socket_.config();
  double target = cfg.core_max_mhz;
  if (std::isfinite(allowance)) {
    target = highest_compliant_mhz(std::max(allowance, 0.0));
  }

  // Slew limiting.
  if (target < current_limit_mhz_) {
    target = std::max(target, current_limit_mhz_ - params_.throttle_slew_mhz);
  } else if (target > current_limit_mhz_) {
    target =
        std::min(target, current_limit_mhz_ + params_.unthrottle_slew_mhz);
  }
  current_limit_mhz_ = socket_.quantize_core_mhz(target);
  socket_.set_core_freq_limit_mhz(current_limit_mhz_);
}

double FirmwareGovernor::highest_compliant_mhz(double allowance_w) const {
  const auto& cfg = socket_.config();
  // Analytic inverse of the power model, floored to the P-state grid so
  // the chosen state's power is at or below the allowance.
  const double exact = socket_.core_mhz_for_power(allowance_w);
  if (!std::isfinite(exact)) return cfg.core_max_mhz;
  const double floored =
      std::floor((exact - cfg.core_min_mhz) / cfg.core_step_mhz) *
          cfg.core_step_mhz +
      cfg.core_min_mhz;
  return std::clamp(floored, cfg.core_min_mhz, cfg.core_max_mhz);
}

void FirmwareGovernor::record_power(double pkg_power_w, double dt_s) {
  DUFP_EXPECT(dt_s > 0.0);
  DUFP_EXPECT(pkg_power_w >= 0.0);
  long_window_.add(pkg_power_w);
  short_window_.add(pkg_power_w);
}

}  // namespace dufp::rapl
