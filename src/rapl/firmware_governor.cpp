#include "rapl/firmware_governor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/expect.h"
#include "hwmodel/socket_model.h"

namespace dufp::rapl {

FirmwareGovernor::FirmwareGovernor(hw::SocketModel& socket,
                                   const GovernorParams& params)
    : socket_(socket),
      params_(params),
      long_window_(window_ticks(1.0)),
      short_window_(window_ticks(0.01)),
      current_limit_mhz_(socket.config().core_max_mhz) {
  DUFP_EXPECT(params.tick_s > 0.0);
  // Start from the hardware default constraints.
  msr::PowerLimit def;
  def.long_term_w = socket.config().long_term_default_w;
  def.long_term_window_s = socket.config().long_term_window_s;
  def.long_term_enabled = true;
  def.long_term_clamped = true;
  def.short_term_w = socket.config().short_term_default_w;
  def.short_term_window_s = socket.config().short_term_window_s;
  def.short_term_enabled = true;
  def.short_term_clamped = true;
  set_limit(def);
  // Cell-edge cache slots for every P-state, allocated up front so the
  // decision paths stay allocation-free in steady state.
  const auto& cfg = socket.config();
  const auto n_states = static_cast<std::size_t>(std::lround(
                            (cfg.core_max_mhz - cfg.core_min_mhz) /
                            cfg.core_step_mhz)) +
                        1;
  cells_.resize(n_states * kCellWays);
  // Intern the config with the process-wide cell cache now: the dense id
  // goes into every shared key, and interning up front keeps the in-run
  // cache paths allocation-free (the alloc-guard contract).
  shared_cfg_ = SharedCellCache::instance().intern_config(cfg);
  // The cell table identifies "search output" with "grid point": the
  // P-state range must be an exact multiple of the step (true of real
  // hardware grids), or the search's top clamp could return an off-grid
  // frequency no cell represents.
  DUFP_EXPECT(grid_mhz(n_states - 1) == cfg.core_max_mhz);
}

std::size_t FirmwareGovernor::window_ticks(double window_s) const {
  const double ticks = window_s / params_.tick_s;
  return static_cast<std::size_t>(std::max(1.0, std::round(ticks)));
}

void FirmwareGovernor::set_limit(const msr::PowerLimit& limit) {
  limit_ = limit;
  const std::size_t lw = window_ticks(limit.long_term_window_s);
  const std::size_t sw = window_ticks(limit.short_term_window_s);
  // Re-create windows only when the span changed; otherwise preserve the
  // accumulated history (a cap change must not forget recent consumption,
  // or a decrease would be toothless for a full window).
  if (lw != 0 && lw != long_window_.capacity()) {
    long_window_ = WindowedMean(lw);
  }
  if (sw != 0 && sw != short_window_.capacity()) {
    short_window_ = WindowedMean(sw);
  }
}

void FirmwareGovernor::tick() {
  current_limit_mhz_ = planned_limit_mhz();
  socket_.set_core_freq_limit_mhz(current_limit_mhz_);
}

double FirmwareGovernor::planned_limit_mhz() const {
  return planned_cached(current_allowance());
}

double FirmwareGovernor::planned_limit_reference_mhz() const {
  return planned_from_allowance(current_allowance());
}

double FirmwareGovernor::planned_from_allowance(double allowance_w) const {
  const auto& cfg = socket_.config();
  double target = cfg.core_max_mhz;
  if (std::isfinite(allowance_w)) {
    target = highest_compliant_mhz(std::max(allowance_w, 0.0));
  }

  // Slew limiting.
  if (target < current_limit_mhz_) {
    target = std::max(target, current_limit_mhz_ - params_.throttle_slew_mhz);
  } else if (target > current_limit_mhz_) {
    target =
        std::min(target, current_limit_mhz_ + params_.unthrottle_slew_mhz);
  }
  return socket_.quantize_core_mhz(target);
}

bool FirmwareGovernor::steady_state(double pkg_power_w) const {
  return long_window_.steady_under(pkg_power_w) &&
         short_window_.steady_under(pkg_power_w) &&
         planned_limit_mhz() == current_limit_mhz_;
}

double FirmwareGovernor::grid_mhz(std::size_t idx) const {
  // Must match the FP expression of highest_compliant_mhz's flooring
  // (floor result * step + min) bit for bit.
  const auto& cfg = socket_.config();
  return static_cast<double>(idx) * cfg.core_step_mhz + cfg.core_min_mhz;
}

double FirmwareGovernor::lowest_allowance_reaching(std::size_t idx) const {
  // The P-state search clamps the allowance at zero, so its output is
  // constant for allowance <= 0 and monotone nondecreasing above (the
  // inner bisection compares against a threshold that moves one way, and
  // floor/clamp of a monotone input stay monotone).
  const double target = grid_mhz(idx);
  const auto reaches = [&](double a) {
    ++cell_stats_.probes;
    return highest_compliant_mhz(std::max(a, 0.0)) >= target;
  };
  const auto bits_of = [](double v) {
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
  };
  // Seed the bracket from the forward power model: analytically the
  // search output crosses `target` exactly at the package power of the
  // target state, and the search's inner bisection lands within a hair
  // of the analytic inverse.  A verified narrow bracket around the seed
  // cuts the probe count roughly in half; if verification fails (clamp
  // regions, degenerate demands) fall back to the full positive range.
  std::uint64_t lo = 0;  // bits of +0.0
  std::uint64_t hi = 0;
  const double seed = socket_.package_power_at(target);
  bool bracketed = false;
  if (std::isfinite(seed) && seed > 0.0) {
    const double lo_seed = seed * (1.0 - 1e-9);
    const double hi_seed = seed * (1.0 + 1e-9);
    if (lo_seed > 0.0 && !reaches(lo_seed) && reaches(hi_seed)) {
      lo = bits_of(lo_seed);  // search(lo) < target
      hi = bits_of(hi_seed);  // search(hi) >= target
      bracketed = true;
    }
  }
  if (!bracketed) {
    if (reaches(0.0)) return -std::numeric_limits<double>::infinity();
    constexpr double kTop = 1e300;
    if (!reaches(kTop)) return std::numeric_limits<double>::infinity();
    hi = bits_of(kTop);
  }
  // Bisect the positive-double bit lattice (IEEE-754 ordering of
  // positive doubles matches their bit patterns): probes of the real
  // search pin the exact double where its output flips, so the cached
  // edge can never disagree with the computation it replaces.
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    double probe;
    std::memcpy(&probe, &mid, sizeof probe);
    if (reaches(probe)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  double edge;
  std::memcpy(&edge, &hi, sizeof edge);
  return edge;
}

double FirmwareGovernor::cell_edge(std::size_t idx) const {
  DUFP_EXPECT(idx * kCellWays < cells_.size());
  CellSlot* ways = cells_.data() + idx * kCellWays;
  const std::uint64_t ver = socket_.state_version();
  // The ways are kept in recency order (front = most recently used), so
  // the common case — socket state unmoved since the front slot was last
  // confirmed — is a single integer compare.
  const auto promote = [&](std::size_t w) -> double {
    if (w != 0) {
      const CellSlot hit = ways[w];
      for (std::size_t i = w; i > 0; --i) ways[i] = ways[i - 1];
      ways[0] = hit;
    }
    return ways[0].edge;
  };
  for (std::size_t w = 0; w < kCellWays; ++w) {
    if (ways[w].valid && ways[w].version == ver) {
      ++cell_stats_.local_hits;
      return promote(w);
    }
  }
  // The state moved (uncore retune, phase change); it may still be one
  // seen before — DUFP controllers sweep the uncore window range and
  // workloads revisit phases, so match by content and re-confirm.
  const hw::PhaseDemand& d = socket_.demand();
  const double umin = socket_.uncore_window_min_mhz();
  const double umax = socket_.uncore_window_max_mhz();
  for (std::size_t w = 0; w < kCellWays; ++w) {
    if (ways[w].valid && ways[w].unc_min == umin && ways[w].unc_max == umax &&
        ways[w].demand == d) {
      ways[w].version = ver;
      ++cell_stats_.local_hits;
      return promote(w);
    }
  }
  // Never-seen state for *this* governor: consult the process-wide
  // shared cache — another governor (same config, other socket, other
  // run, other repetition) may have pinned this exact edge already.  A
  // hit fills the way with the identical bits the local bisection would
  // produce, so the refill below is the only place the P-state search
  // still runs.
  SharedCellCache& shared = SharedCellCache::instance();
  const SharedCellCache::Key key =
      SharedCellCache::make_key(shared_cfg_, idx, umin, umax, d);
  CellSlot& slot = ways[kCellWays - 1];
  if (slot.valid) ++cell_stats_.way_evictions;
  double edge;
  if (shared.lookup(key, &edge)) {
    ++cell_stats_.shared_hits;
  } else {
    edge = lowest_allowance_reaching(idx);
    ++cell_stats_.cold_builds;
    shared.insert(key, edge);
  }
  slot.edge = edge;
  slot.version = ver;
  slot.unc_min = umin;
  slot.unc_max = umax;
  slot.demand = d;
  slot.valid = true;
  return promote(kCellWays - 1);
}

double FirmwareGovernor::planned_cached(double allowance_w) const {
  const auto& cfg = socket_.config();
  double target = cfg.core_max_mhz;
  if (std::isfinite(allowance_w)) {
    // Locate the allowance's cell — the P-state the search would return —
    // starting from the applied limit's cell (where a calm tick lands in
    // one or two comparisons) and walking only as far as the slew limits
    // can matter: past them the clamp fixes the outcome regardless of
    // how much further the search result lies.
    const std::size_t n = cells_.size() / kCellWays;
    auto k = static_cast<std::size_t>(std::lround(
        (current_limit_mhz_ - cfg.core_min_mhz) / cfg.core_step_mhz));
    if (allowance_w >= cell_edge(k)) {
      while (k + 1 < n &&
             grid_mhz(k) < current_limit_mhz_ + params_.unthrottle_slew_mhz &&
             allowance_w >= cell_edge(k + 1)) {
        ++k;
      }
    } else {
      while (k > 0 &&
             grid_mhz(k) > current_limit_mhz_ - params_.throttle_slew_mhz) {
        --k;
        if (allowance_w >= cell_edge(k)) break;
      }
    }
    target = grid_mhz(k);
  }

  // Slew limiting and quantization, shared verbatim with the reference
  // decision (planned_from_allowance).
  if (target < current_limit_mhz_) {
    target = std::max(target, current_limit_mhz_ - params_.throttle_slew_mhz);
  } else if (target > current_limit_mhz_) {
    target =
        std::min(target, current_limit_mhz_ + params_.unthrottle_slew_mhz);
  }
  return socket_.quantize_core_mhz(target);
}

void FirmwareGovernor::refresh_calm_cell() {
  // The applied limit's cell edges, flattened into members so the calm
  // test itself is two comparisons; revalidated by (limit, state version).
  const auto& cfg = socket_.config();
  const std::size_t n = cells_.size() / kCellWays;
  const auto idx = static_cast<std::size_t>(std::lround(
      (current_limit_mhz_ - cfg.core_min_mhz) / cfg.core_step_mhz));
  calm_lo_ = cell_edge(idx);
  calm_top_ = idx + 1 >= n;
  calm_hi_ = calm_top_ ? 0.0 : cell_edge(idx + 1);
  calm_limit_ = current_limit_mhz_;
  calm_version_ = socket_.state_version();
}

double FirmwareGovernor::highest_compliant_mhz(double allowance_w) const {
  const auto& cfg = socket_.config();
  // Analytic inverse of the power model, floored to the P-state grid so
  // the chosen state's power is at or below the allowance.
  const double exact = socket_.core_mhz_for_power(allowance_w);
  if (!std::isfinite(exact)) return cfg.core_max_mhz;
  const double floored =
      std::floor((exact - cfg.core_min_mhz) / cfg.core_step_mhz) *
          cfg.core_step_mhz +
      cfg.core_min_mhz;
  return std::clamp(floored, cfg.core_min_mhz, cfg.core_max_mhz);
}

}  // namespace dufp::rapl
