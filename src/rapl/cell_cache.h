// Process-wide shared cell-edge cache (DESIGN.md §7f).
//
// A cell edge — the exact IEEE-754 double where the governor's P-state
// search output flips to grid state `idx` — is a pure function of
//   (socket numeric parameters, P-state index, uncore window, PhaseDemand):
// the bit-lattice bisection in FirmwareGovernor::lowest_allowance_reaching
// probes only SocketModel::core_mhz_for_power / package_power_at, whose
// inputs are exactly those values.  Two governors anywhere in the process
// whose keys match therefore compute bit-equal edges, so a shared
// read-only cache behind the per-governor ways is invisible to the
// byte-identity contract: a hit replays the identical double the local
// bisection would have produced.
//
// This is the cross-run amortization layer of the batched multi-run
// engine: repetition 2..N of a cell, the other sockets of the same
// machine, and every same-config cell of a grid start warm instead of
// re-running ~25 planner probes per (P-state, window, demand) tuple —
// the single largest cost of a cold tournament grid (~40% of wall time).
//
// Concurrency: a single mutex guards the table (lane-group threads and
// the plan's ThreadPool workers all land here).  Lookups are rare
// relative to calm ticks — the per-governor ways absorb the hot path —
// so the lock is not contended in practice.  Insertion is
// first-writer-wins; a racing second insert computed the identical bits
// anyway.
//
// Allocation discipline: the edge table is a fixed-capacity
// open-addressing array allocated once at singleton construction, so
// lookup/insert never touch the heap — the engine's zero-allocation
// steady-state guarantee (tests/perf/alloc_guard_test) extends through
// the cache.  A full table drops further inserts (counted in
// GlobalStats::full_drops); correctness is unaffected, later runs just
// rebuild those edges locally.
//
// Keys compare the *bit patterns* of every double input (never ==):
// conservative — a -0.0 vs +0.0 mismatch costs a duplicate build, never
// a wrong edge.  Socket configs are interned by exact field comparison
// into small ids so the per-edge key stays a flat array of words
// (interning allocates, but only at governor construction).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "hwmodel/demand.h"
#include "hwmodel/socket_config.h"

namespace dufp::rapl {

/// Cell-edge table economics for one governor (or summed over a run /
/// grid).  Cheap enough to keep always-on; the grid-throughput bench and
/// telemetry read it so the shared-cache win is measurable, not assumed.
struct CellStats {
  std::uint64_t cold_builds = 0;    ///< edge bisections actually run
  std::uint64_t probes = 0;         ///< P-state-search probes inside them
  std::uint64_t shared_hits = 0;    ///< way misses served by the process cache
  std::uint64_t way_evictions = 0;  ///< valid ways overwritten on refill
  std::uint64_t local_hits = 0;     ///< served from the governor's own ways

  void add(const CellStats& o) {
    cold_builds += o.cold_builds;
    probes += o.probes;
    shared_hits += o.shared_hits;
    way_evictions += o.way_evictions;
    local_hits += o.local_hits;
  }
};

class SharedCellCache {
 public:
  /// Flat key: [config id, P-state index, uncore window min/max bits,
  /// the eight PhaseDemand doubles as bits, the idle flag].
  using Key = std::array<std::uint64_t, 13>;

  static SharedCellCache& instance();

  /// Interns a socket config by exact comparison of every numeric field
  /// entering the edge computation (grid geometry, uncore window range,
  /// power and memory model parameters, core count).  Returns a dense id
  /// stable for the process lifetime.  model_name is deliberately
  /// ignored: renaming a part must not split the cache.
  std::uint32_t intern_config(const hw::SocketConfig& cfg);

  /// Builds the per-edge key from the interned config and the live
  /// search inputs.
  static Key make_key(std::uint32_t config_id, std::size_t idx,
                      double unc_min, double unc_max,
                      const hw::PhaseDemand& demand);

  /// True (filling *edge) when the key is cached.  Counts a global hit.
  bool lookup(const Key& key, double* edge);

  /// Publishes a freshly built edge (first writer wins).
  void insert(const Key& key, double edge);

  /// Master switch (default from DUFP_SHARED_CELL_CACHE, on unless "0").
  /// Off: lookup always misses and insert drops — every governor builds
  /// its own edges exactly as before the cache existed.
  bool enabled() const;
  void set_enabled(bool on);

  /// Drops every cached edge (the warm/cold A-B knob of
  /// bench/grid_throughput; also isolates tests) and resets the global
  /// stats.  Interned config ids stay valid — governors hold them for
  /// the process lifetime.
  void clear();

  /// Process-wide totals since the last clear().
  struct GlobalStats {
    std::uint64_t entries = 0;     ///< distinct edges resident
    std::uint64_t hits = 0;        ///< lookups served
    std::uint64_t misses = 0;      ///< lookups not served (while enabled)
    std::uint64_t inserts = 0;     ///< edges published
    std::uint64_t full_drops = 0;  ///< inserts dropped at capacity
  };
  GlobalStats stats() const;

 private:
  SharedCellCache();

  /// One open-addressing slot; `used` never reverts outside clear(), so
  /// plain linear probing stays correct (no tombstones needed).
  struct Slot {
    Key key{};
    double edge = 0.0;
    bool used = false;
  };

  std::size_t probe_locked(const Key& key) const;

  mutable std::mutex mu_;
  bool enabled_ = true;
  std::vector<hw::SocketConfig> configs_;  // interned, id = index
  std::vector<Slot> slots_;                // fixed size, power of two
  std::size_t resident_ = 0;
  GlobalStats stats_;
};

}  // namespace dufp::rapl
