// Minimal JSON reader/writer for the shard spec + result contract.
//
// Scope is deliberately narrow: deterministic, dependency-free round-trip
// of the JSON the shard layer emits itself (specs, JSONL result lines).
// Objects preserve insertion order (no hashing, no sorting) so a value
// serializes back to the exact byte sequence it was built in — the shard
// gatherer's byte-identity guarantees depend on that.
//
// Numbers are kept as their raw token text on parse and re-emitted
// verbatim, so a file can be parsed and rewritten without any
// double→text→double wobble.  For bit-exact doubles across machines the
// codec below sidesteps decimal entirely: double_to_hex/hex_to_double
// transport the IEEE-754 bit pattern as 16 hex digits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dufp::json {

class Value;

/// Insertion-ordered key→value list (shard files have a handful of keys;
/// linear find is fine and keeps serialization deterministic).
using Members = std::vector<std::pair<std::string, Value>>;
using Items = std::vector<Value>;

class Value {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  Value() : kind_(Kind::null) {}
  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  /// Stores the decimal text of `v` (shortest round-trip not required —
  /// use this only where bit-exactness doesn't matter, e.g. counts).
  static Value make_u64(std::uint64_t v);
  static Value make_i64(std::int64_t v);
  /// Raw number token, emitted verbatim (caller guarantees validity).
  static Value make_raw_number(std::string token);
  static Value make_string(std::string s);
  static Value make_array(Items items = {});
  static Value make_object(Members members = {});

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }
  bool is_object() const { return kind_ == Kind::object; }
  bool is_array() const { return kind_ == Kind::array; }
  bool is_string() const { return kind_ == Kind::string; }
  bool is_number() const { return kind_ == Kind::number; }
  bool is_bool() const { return kind_ == Kind::boolean; }

  /// Typed accessors; throw std::runtime_error on a kind mismatch or an
  /// unparseable number token (never silently coerce).
  bool as_bool() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  const std::string& as_string() const;
  const Items& as_array() const;
  const Members& as_object() const;

  /// Object lookup; returns nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;
  /// Object lookup; throws std::runtime_error naming the key when absent.
  const Value& at(std::string_view key) const;
  /// Appends a member (objects) / element (arrays); throws otherwise.
  void add(std::string key, Value v);
  void push_back(Value v);

  /// Compact single-line serialization (no whitespace), deterministic:
  /// members in insertion order, numbers as their stored tokens, strings
  /// escaped minimally (", \, control chars).
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Kind kind_;
  bool bool_ = false;
  std::string scalar_;  // number token or string payload
  std::shared_ptr<Items> items_;
  std::shared_ptr<Members> members_;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
/// Throws std::runtime_error with the byte offset on malformed input.
Value parse(std::string_view text);

/// JSON string escaping (the subset dump() emits).
void escape_string(std::string_view s, std::string& out);

// -- bit-exact double transport ---------------------------------------------

/// The IEEE-754 bit pattern of `v` as 16 lowercase hex digits.
std::string double_to_hex(double v);
/// Inverse of double_to_hex; throws std::runtime_error on malformed input
/// (must be exactly 16 hex digits).
double hex_to_double(std::string_view hex);

// -- content fingerprinting --------------------------------------------------

/// FNV-1a 64-bit over the bytes; the shard layer fingerprints the
/// canonical spec serialization with this so a gather can refuse result
/// files produced from a different spec.
std::uint64_t fnv1a(std::string_view bytes);

}  // namespace dufp::json
