#include "common/thread_pool.h"

#include <stdexcept>

namespace dufp {

ThreadPool::ThreadPool(int threads, std::size_t queue_capacity) {
  const int n = threads < 1 ? 1 : threads;
  capacity_ = queue_capacity > 0 ? queue_capacity
                                 : static_cast<std::size_t>(n) * 2;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_ready_.wait(
        lock, [this] { return stopping_ || queue_.size() < capacity_; });
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_ready_.notify_one();
    task();  // packaged_task captures any exception into its future
  }
}

void ThreadPool::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  space_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace dufp
