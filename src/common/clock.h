// Simulated time.
//
// The whole substrate is driven by a discrete clock counting integer
// microseconds.  Integer time avoids the accumulation error a double-based
// clock would suffer over a 400-second run at 1 ms resolution, and makes
// event ordering exact.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/expect.h"

#include "common/units.h"

namespace dufp {

/// A point in simulated time, measured in microseconds since simulation
/// start.  Value type; totally ordered.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime from_seconds(double s) {
    return SimTime{seconds_to_us(s)};
  }
  static constexpr SimTime from_millis(std::int64_t ms) {
    return SimTime{ms * 1000};
  }

  constexpr std::int64_t micros() const { return micros_; }
  constexpr double seconds() const { return us_to_seconds(micros_); }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime d) const {
    return SimTime{micros_ + d.micros_};
  }
  constexpr SimTime operator-(SimTime d) const {
    return SimTime{micros_ - d.micros_};
  }
  constexpr SimTime& operator+=(SimTime d) {
    micros_ += d.micros_;
    return *this;
  }

  std::string to_string() const;

 private:
  std::int64_t micros_ = 0;
};

/// Durations reuse SimTime; an alias keeps signatures self-documenting.
using SimDuration = SimTime;

/// A monotonically advancing simulation clock.  The simulation engine owns
/// one instance and advances it; every other component reads it through a
/// const reference, which keeps time flow single-writer by construction.
class SimClock {
 public:
  SimTime now() const { return now_; }

  /// Advance by `step`; returns the new time.  Steps must be positive.
  /// Inline: the engine advances the clock once per simulated tick.
  SimTime advance(SimDuration step) {
    DUFP_EXPECT(step.micros() > 0);
    now_ += step;
    return now_;
  }

 private:
  SimTime now_ = SimTime::zero();
};

}  // namespace dufp
