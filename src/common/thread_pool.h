// Fixed-size worker pool with a bounded task queue.
//
// The experiment harness runs hundreds of independent, seed-deterministic
// simulations; this pool is the substrate that spreads them across cores.
// Design points, all deliberate:
//
//  * fixed size, no work stealing — jobs are long (whole simulated runs)
//    and uniform enough that a single shared FIFO keeps every worker busy;
//  * bounded queue — `submit` blocks when `queue_capacity` tasks are
//    pending, so a producer enumerating a huge job set cannot outrun the
//    workers and hold every task's state in memory at once;
//  * futures-based — `submit` returns a std::future carrying the task's
//    result or exception, so callers join on completion per task and
//    failures are not lost;
//  * clean shutdown — `shutdown()` (also run by the destructor) lets the
//    queued tasks drain, then joins every worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dufp {

class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to >= 1).  `queue_capacity` bounds
  /// the number of tasks waiting to run; 0 picks 2x the worker count.
  explicit ThreadPool(int threads, std::size_t queue_capacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_capacity() const { return capacity_; }

  /// Enqueues `fn` and returns a future for its result.  Blocks while the
  /// queue is at capacity; throws std::runtime_error after shutdown().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Stops accepting tasks, runs everything still queued, joins all
  /// workers.  Idempotent.
  void shutdown();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable task_ready_;   // workers wait: task or shutdown
  std::condition_variable space_ready_;  // producers wait: queue has room
  std::deque<std::function<void()>> queue_;
  std::size_t capacity_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dufp
