// String helpers shared by the config parser, table writers and CLIs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dufp {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Lowercased copy.
std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses "12.5", "12.5W", "110" etc.; returns false on garbage.
bool parse_double(std::string_view s, double& out);

/// Parses a non-negative integer.
bool parse_u64(std::string_view s, unsigned long long& out);

}  // namespace dufp
