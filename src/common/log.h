// Minimal leveled logger.
//
// The runtime agent and the harness log through this; benchmarks keep it at
// `warn` so figure output stays machine-readable.  Thread-safe: a single
// mutex serializes writes (the log is never on a hot path).
#pragma once

#include <mutex>
#include <string>

namespace dufp {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::warn;
  std::mutex mu_;
};

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace dufp
