#include "common/csv.h"

#include <stdexcept>

#include "common/table.h"

namespace dufp {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : file_(path) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
  os_ = &file_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *os_ << ',';
    *os_ << csv_escape(cells[i]);
  }
  *os_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt_double(v, precision));
  write_row(cells);
}

}  // namespace dufp
