#include "common/clock.h"

#include <cstdio>

#include "common/expect.h"

namespace dufp {

std::string SimTime::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", seconds());
  return buf;
}

}  // namespace dufp
