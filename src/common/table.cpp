#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/expect.h"

namespace dufp {

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DUFP_EXPECT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  DUFP_EXPECT(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  DUFP_EXPECT(values.size() + 1 == header_.size());
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt_double(v, precision));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t i = row[c].size(); i < width[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  auto print_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace dufp
