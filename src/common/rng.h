// Deterministic random number generation.
//
// Experiments must be reproducible run-to-run: every source of randomness
// (measurement noise, workload jitter) draws from an explicitly seeded
// xoshiro256** stream.  We do not use std::mt19937 because its distribution
// implementations are not specified bit-exactly across standard libraries,
// and cross-toolchain reproducibility matters for the recorded
// EXPERIMENTS.md numbers.
#pragma once

#include <array>
#include <cstdint>

namespace dufp {

/// xoshiro256** by Blackman & Vigna (public domain reference
/// implementation), seeded via SplitMix64 so any 64-bit seed yields a
/// well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method (deterministic given the
  /// stream position).
  double gaussian();

  /// Normal with the given mean / standard deviation.
  double gaussian(double mean, double stddev);

  /// Derive an independent stream for a sub-component.  Streams derived
  /// with distinct tags are statistically independent of the parent and of
  /// each other.
  Rng fork(std::uint64_t tag);

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace dufp
