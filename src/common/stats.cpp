#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/expect.h"

namespace dufp {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void TimeWeightedMean::add(double value, double weight_seconds) {
  DUFP_EXPECT(weight_seconds >= 0.0);
  weighted_sum_ += value * weight_seconds;
  weight_ += weight_seconds;
}

double TimeWeightedMean::mean() const {
  return weight_ > 0.0 ? weighted_sum_ / weight_ : 0.0;
}

TrimmedSummary trimmed_summary(const std::vector<double>& key,
                               const std::vector<double>& values) {
  DUFP_EXPECT(key.size() == values.size());
  DUFP_EXPECT(!values.empty());

  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return key[a] < key[b]; });

  std::size_t lo = 0;
  std::size_t hi = order.size();
  if (order.size() >= 3) {
    ++lo;   // drop lowest-key run
    --hi;   // drop highest-key run
  }

  TrimmedSummary s;
  s.min = values[order[lo]];
  s.max = values[order[lo]];
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    const double v = values[order[i]];
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.used = hi - lo;
  s.mean = sum / static_cast<double>(s.used);
  return s;
}

TrimmedSummary trimmed_summary(const std::vector<double>& values) {
  return trimmed_summary(values, values);
}

double percentile(std::vector<double> values, double p) {
  DUFP_EXPECT(!values.empty());
  DUFP_EXPECT(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace dufp
