#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dufp {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string strf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

bool parse_double(std::string_view s, double& out) {
  const std::string t{trim(s)};
  if (t.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end == t.c_str()) return false;
  // Allow a trailing unit suffix of letters only ("W", "s", "GHz").
  for (const char* p = end; *p; ++p) {
    if (!std::isalpha(static_cast<unsigned char>(*p)) && *p != '%') return false;
  }
  out = v;
  return true;
}

bool parse_u64(std::string_view s, unsigned long long& out) {
  const std::string t{trim(s)};
  if (t.empty() || t[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  if (end == t.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace dufp
