#include "common/log.h"

#include <cstdio>

namespace dufp {
namespace {

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& msg) {
  if (level < level_) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[dufp %s] %s\n", level_name(level), msg.c_str());
}

void log_debug(const std::string& msg) {
  Logger::instance().log(LogLevel::debug, msg);
}
void log_info(const std::string& msg) {
  Logger::instance().log(LogLevel::info, msg);
}
void log_warn(const std::string& msg) {
  Logger::instance().log(LogLevel::warn, msg);
}
void log_error(const std::string& msg) {
  Logger::instance().log(LogLevel::error, msg);
}

}  // namespace dufp
