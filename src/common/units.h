// Unit conventions used across the library.
//
// We deliberately use plain `double` with a strict naming convention rather
// than heavyweight quantity types (CG F.15: simple, conventional ways of
// passing information).  The convention:
//
//   *_w     watts            *_j     joules
//   *_mhz   megahertz        *_ghz   gigahertz (only at API boundaries)
//   *_s     seconds          *_us    microseconds (integer)
//   *_gbps  gigabytes/second *_gflops  1e9 FLOP/s
//
// Conversion helpers below keep the factors out of call sites.
#pragma once

#include <cstdint>

namespace dufp {

/// Microseconds per second; the simulation clock counts integer microseconds.
inline constexpr std::int64_t kMicrosPerSecond = 1'000'000;

constexpr double mhz_to_ghz(double mhz) { return mhz / 1000.0; }
constexpr double ghz_to_mhz(double ghz) { return ghz * 1000.0; }

constexpr double us_to_seconds(std::int64_t us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}
constexpr std::int64_t seconds_to_us(double s) {
  return static_cast<std::int64_t>(s * static_cast<double>(kMicrosPerSecond) +
                                   (s >= 0 ? 0.5 : -0.5));
}

constexpr double uw_to_watts(std::uint64_t uw) {
  return static_cast<double>(uw) * 1e-6;
}
constexpr std::uint64_t watts_to_uw(double w) {
  return static_cast<std::uint64_t>(w * 1e6 + 0.5);
}

constexpr double uj_to_joules(std::uint64_t uj) {
  return static_cast<double>(uj) * 1e-6;
}

/// Delta between two readings of a monotonic counter that wraps modulo
/// `wrap_range` (0 = the counter never wraps in practice, e.g. 64-bit).
/// Single-wrap assumption: valid whenever the counter is sampled at least
/// once per wrap period, which RAPL's ~minutes-long energy wrap and a
/// 200 ms controller trivially satisfy.  This is THE helper for every
/// `energy_uj()` / raw-counter delta in the tree — naive `after - before`
/// subtraction is wrong for ~2^-32 of samples and shows up as a huge
/// negative (or, cast unsigned, astronomically positive) energy spike.
constexpr std::uint64_t wrap_delta(std::uint64_t before, std::uint64_t after,
                                   std::uint64_t wrap_range) {
  if (wrap_range == 0 || after >= before) return after - before;
  return wrap_range - before + after;  // single wrap
}

/// FLOP/s expressed in GFLOP/s at reporting boundaries.
constexpr double flops_to_gflops(double flops) { return flops * 1e-9; }

/// Bytes/s expressed in GB/s (1e9 bytes, as PAPI-derived tools report).
constexpr double bps_to_gbps(double bps) { return bps * 1e-9; }

}  // namespace dufp
