// Unit conventions used across the library.
//
// We deliberately use plain `double` with a strict naming convention rather
// than heavyweight quantity types (CG F.15: simple, conventional ways of
// passing information).  The convention:
//
//   *_w     watts            *_j     joules
//   *_mhz   megahertz        *_ghz   gigahertz (only at API boundaries)
//   *_s     seconds          *_us    microseconds (integer)
//   *_gbps  gigabytes/second *_gflops  1e9 FLOP/s
//
// Conversion helpers below keep the factors out of call sites.
#pragma once

#include <cstdint>

namespace dufp {

/// Microseconds per second; the simulation clock counts integer microseconds.
inline constexpr std::int64_t kMicrosPerSecond = 1'000'000;

constexpr double mhz_to_ghz(double mhz) { return mhz / 1000.0; }
constexpr double ghz_to_mhz(double ghz) { return ghz * 1000.0; }

constexpr double us_to_seconds(std::int64_t us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}
constexpr std::int64_t seconds_to_us(double s) {
  return static_cast<std::int64_t>(s * static_cast<double>(kMicrosPerSecond) +
                                   (s >= 0 ? 0.5 : -0.5));
}

constexpr double uw_to_watts(std::uint64_t uw) {
  return static_cast<double>(uw) * 1e-6;
}
constexpr std::uint64_t watts_to_uw(double w) {
  return static_cast<std::uint64_t>(w * 1e6 + 0.5);
}

constexpr double uj_to_joules(std::uint64_t uj) {
  return static_cast<double>(uj) * 1e-6;
}

/// FLOP/s expressed in GFLOP/s at reporting boundaries.
constexpr double flops_to_gflops(double flops) { return flops * 1e-9; }

/// Bytes/s expressed in GB/s (1e9 bytes, as PAPI-derived tools report).
constexpr double bps_to_gbps(double bps) { return bps * 1e-9; }

}  // namespace dufp
