#include "common/config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.h"

namespace dufp {

Config Config::parse(std::string_view text) {
  Config cfg;
  std::size_t line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("Config: missing '=' on line " +
                               std::to_string(line_no));
    }
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key on line " +
                               std::to_string(line_no));
    }
    cfg.set(std::string(key), std::string(value));
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void Config::set(std::string key, std::string value) {
  values_[to_lower(key)] = std::move(value);
}

bool Config::has(std::string_view key) const {
  return values_.count(to_lower(key)) != 0;
}

std::optional<std::string> Config::get(std::string_view key) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(std::string_view key, std::string def) const {
  if (auto v = get(key)) return *v;
  return def;
}

double Config::get_double(std::string_view key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  double out = 0.0;
  if (!parse_double(*v, out)) {
    throw std::runtime_error("Config: key '" + std::string(key) +
                             "' is not a number: " + *v);
  }
  return out;
}

long long Config::get_int(std::string_view key, long long def) const {
  const double d = get_double(key, static_cast<double>(def));
  return static_cast<long long>(d);
}

bool Config::get_bool(std::string_view key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  const std::string s = to_lower(trim(*v));
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::runtime_error("Config: key '" + std::string(key) +
                           "' is not a boolean: " + *v);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace dufp
