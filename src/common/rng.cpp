#include "common/rng.h"

#include <cmath>

namespace dufp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits → uniform in [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  have_spare_ = true;
  return u * m;
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the parent stream with the tag through SplitMix64 so that forks
  // with different tags diverge even from identical parent states.
  std::uint64_t s = next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x6a09e667f3bcc909ULL);
  return Rng{splitmix64(s)};
}

}  // namespace dufp
