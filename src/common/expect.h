// Precondition / postcondition helpers in the spirit of the C++ Core
// Guidelines I.6 (Expects) and I.8 (Ensures).
//
// DUFP_EXPECT is used for caller-facing contract violations: it throws
// std::invalid_argument so that misuse of the public API is diagnosable in
// tests rather than UB.  DUFP_ASSERT is for internal invariants and throws
// std::logic_error; both are always on (this library is control-plane code
// running at 5 Hz, never in a hot loop).
#pragma once

#include <stdexcept>
#include <string>

namespace dufp::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::string msg;
  msg += kind;
  msg += " failed: ";
  msg += expr;
  msg += " at ";
  msg += file;
  msg += ":";
  msg += std::to_string(line);
  if (kind[0] == 'E')  // Expects
    throw std::invalid_argument(msg);
  throw std::logic_error(msg);
}

}  // namespace dufp::detail

#define DUFP_EXPECT(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::dufp::detail::contract_failure("Expects", #cond, __FILE__,       \
                                       __LINE__);                        \
  } while (false)

#define DUFP_ASSERT(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::dufp::detail::contract_failure("Assert", #cond, __FILE__,        \
                                       __LINE__);                        \
  } while (false)
