// Key/value configuration used by the CLI examples and the runtime agent.
//
// Format: one `key = value` per line; `#` starts a comment; keys are
// case-insensitive and dot-namespaced ("dufp.slowdown = 0.05").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dufp {

class Config {
 public:
  Config() = default;

  /// Parses config text; throws std::runtime_error with a line number on
  /// malformed input.
  static Config parse(std::string_view text);

  /// Loads from a file; throws std::runtime_error if unreadable.
  static Config load(const std::string& path);

  void set(std::string key, std::string value);

  bool has(std::string_view key) const;
  std::optional<std::string> get(std::string_view key) const;

  /// Typed getters with defaults; throw std::runtime_error when a present
  /// value fails to parse (silent fallback would hide typos).
  std::string get_string(std::string_view key, std::string def) const;
  double get_double(std::string_view key, double def) const;
  long long get_int(std::string_view key, long long def) const;
  bool get_bool(std::string_view key, bool def) const;

  /// All keys, sorted (for help/debug output).
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;  // lowercase keys
};

}  // namespace dufp
