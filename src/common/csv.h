// CSV emission for traces and figure data.  Quoting follows RFC 4180:
// fields containing comma, quote or newline are quoted, quotes doubled.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace dufp {

class CsvWriter {
 public:
  /// Writes to an externally owned stream.
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::string& label, const std::vector<double>& values,
                 int precision = 6);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream file_;
  std::ostream* os_ = nullptr;
  std::size_t rows_ = 0;
};

/// Escapes a single CSV field per RFC 4180.
std::string csv_escape(const std::string& field);

}  // namespace dufp
