// Small statistics toolkit used by the measurement layer and the
// experiment harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace dufp {

/// Numerically stable running mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);
  void clear() { *this = RunningStats{}; }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average: accumulates integral(x dt) / total time.  Used
/// for average power over variable-length intervals.
class TimeWeightedMean {
 public:
  void add(double value, double weight_seconds);
  double mean() const;
  double total_weight() const { return weight_; }

 private:
  double weighted_sum_ = 0.0;
  double weight_ = 0.0;
};

/// Summary of a repeated-runs experiment following the paper's protocol
/// (Sec. V): drop the runs with the lowest and highest *key* metric, then
/// average the survivors; also report observed min / max for error bars.
struct TrimmedSummary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t used = 0;  ///< number of runs averaged after trimming
};

/// Computes the paper's trimmed mean.  `key` selects which runs get
/// dropped (the paper trims on execution time); `values` are the metric to
/// summarize, index-aligned with `key`.  With fewer than three runs no
/// trimming occurs.
TrimmedSummary trimmed_summary(const std::vector<double>& key,
                               const std::vector<double>& values);

/// Convenience overload trimming on the values themselves.
TrimmedSummary trimmed_summary(const std::vector<double>& values);

/// Percentile (linear interpolation, p in [0,100]) of a copy of `values`.
double percentile(std::vector<double> values, double p);

}  // namespace dufp
