#include "common/json.h"

#include <bit>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <stdexcept>

#include "common/string_util.h"

namespace dufp::json {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("json: " + what);
}

}  // namespace

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::boolean;
  v.bool_ = b;
  return v;
}

Value Value::make_u64(std::uint64_t n) {
  Value v;
  v.kind_ = Kind::number;
  v.scalar_ = strf("%" PRIu64, n);
  return v;
}

Value Value::make_i64(std::int64_t n) {
  Value v;
  v.kind_ = Kind::number;
  v.scalar_ = strf("%" PRId64, n);
  return v;
}

Value Value::make_raw_number(std::string token) {
  Value v;
  v.kind_ = Kind::number;
  v.scalar_ = std::move(token);
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::string;
  v.scalar_ = std::move(s);
  return v;
}

Value Value::make_array(Items items) {
  Value v;
  v.kind_ = Kind::array;
  v.items_ = std::make_shared<Items>(std::move(items));
  return v;
}

Value Value::make_object(Members members) {
  Value v;
  v.kind_ = Kind::object;
  v.members_ = std::make_shared<Members>(std::move(members));
  return v;
}

bool Value::as_bool() const {
  if (kind_ != Kind::boolean) fail("not a boolean");
  return bool_;
}

std::uint64_t Value::as_u64() const {
  if (kind_ != Kind::number) fail("not a number");
  errno = 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(scalar_.c_str(), &end, 10);
  if (errno != 0 || end != scalar_.c_str() + scalar_.size() ||
      scalar_.empty() || scalar_[0] == '-') {
    fail("number token '" + scalar_ + "' is not a u64");
  }
  return n;
}

std::int64_t Value::as_i64() const {
  if (kind_ != Kind::number) fail("not a number");
  errno = 0;
  char* end = nullptr;
  const long long n = std::strtoll(scalar_.c_str(), &end, 10);
  if (errno != 0 || end != scalar_.c_str() + scalar_.size() ||
      scalar_.empty()) {
    fail("number token '" + scalar_ + "' is not an i64");
  }
  return n;
}

double Value::as_double() const {
  if (kind_ != Kind::number) fail("not a number");
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(scalar_.c_str(), &end);
  if (errno != 0 || end != scalar_.c_str() + scalar_.size() ||
      scalar_.empty()) {
    fail("number token '" + scalar_ + "' is not a double");
  }
  return d;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::string) fail("not a string");
  return scalar_;
}

const Items& Value::as_array() const {
  if (kind_ != Kind::array) fail("not an array");
  return *items_;
}

const Members& Value::as_object() const {
  if (kind_ != Kind::object) fail("not an object");
  return *members_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::object) return nullptr;
  for (const auto& [k, v] : *members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) fail("missing key '" + std::string(key) + "'");
  return *v;
}

void Value::add(std::string key, Value v) {
  if (kind_ != Kind::object) fail("add() on a non-object");
  members_->emplace_back(std::move(key), std::move(v));
}

void Value::push_back(Value v) {
  if (kind_ != Kind::array) fail("push_back() on a non-array");
  items_->push_back(std::move(v));
}

void escape_string(std::string_view s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Value::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::null: out += "null"; break;
    case Kind::boolean: out += bool_ ? "true" : "false"; break;
    case Kind::number: out += scalar_; break;
    case Kind::string: escape_string(scalar_, out); break;
    case Kind::array: {
      out += '[';
      bool first = true;
      for (const auto& v : *items_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : *members_) {
        if (!first) out += ',';
        first = false;
        escape_string(k, out);
        out += ':';
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// -- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) error("trailing content");
    return v;
  }

 private:
  [[noreturn]] void error(const std::string& what) const {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect_char(char c) {
    if (peek() != c) error(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value::make_string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) error("bad literal");
      return Value::make_bool(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) error("bad literal");
      return Value::make_bool(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) error("bad literal");
      return Value::make_null();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    error("unexpected character");
  }

  Value parse_object() {
    expect_char('{');
    Value obj = Value::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect_char(':');
      obj.add(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      error("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect_char('[');
    Value arr = Value::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      error("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect_char('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else error("bad \\u escape");
          }
          // The shard files only ever escape control characters; encode
          // the BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: error("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      error("bad number");
    }
    return Value::make_raw_number(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

// -- bit-exact double transport ----------------------------------------------

std::string double_to_hex(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  return strf("%016" PRIx64, bits);
}

double hex_to_double(std::string_view hex) {
  if (hex.size() != 16) fail("hex double must be 16 digits");
  std::uint64_t bits = 0;
  for (const char c : hex) {
    bits <<= 4;
    if (c >= '0' && c <= '9') bits |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') bits |= static_cast<std::uint64_t>(c - 'A' + 10);
    else fail("bad hex digit in double");
  }
  return std::bit_cast<double>(bits);
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dufp::json
