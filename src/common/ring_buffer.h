// Fixed-capacity ring buffer used by the RAPL running-average windows and
// the controllers' short histories.  Header-only; trivially copyable
// payloads expected but not required.
#pragma once

#include <cstddef>
#include <vector>

#include "common/expect.h"

namespace dufp {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    DUFP_EXPECT(capacity > 0);
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }

  /// Append, evicting the oldest element when full.  Returns true if an
  /// element was evicted.
  bool push(const T& v) {
    const bool evicting = full();
    buf_[head_] = v;
    head_ = (head_ + 1) % buf_.size();
    if (evicting) {
      tail_ = head_;
    } else {
      ++size_;
    }
    return evicting;
  }

  /// Element `i` positions back from the newest (0 = newest).
  const T& from_newest(std::size_t i) const {
    DUFP_EXPECT(i < size_);
    const std::size_t idx = (head_ + buf_.size() - 1 - i) % buf_.size();
    return buf_[idx];
  }

  /// Element `i` positions forward from the oldest (0 = oldest).
  const T& from_oldest(std::size_t i) const {
    DUFP_EXPECT(i < size_);
    return buf_[(tail_ + i) % buf_.size()];
  }

  const T& newest() const { return from_newest(0); }
  const T& oldest() const { return from_oldest(0); }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

  /// Visit all elements oldest → newest.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) f(from_oldest(i));
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t tail_ = 0;  ///< oldest element
  std::size_t size_ = 0;
};

/// Windowed arithmetic mean over the last `capacity` samples, O(1) update.
class WindowedMean {
 public:
  explicit WindowedMean(std::size_t capacity) : ring_(capacity) {}

  void add(double v) {
    if (ring_.full()) sum_ -= ring_.oldest();
    ring_.push(v);
    sum_ += v;
  }

  double mean() const {
    return ring_.empty() ? 0.0 : sum_ / static_cast<double>(ring_.size());
  }
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return ring_.capacity(); }
  bool full() const { return ring_.full(); }
  void clear() {
    ring_.clear();
    sum_ = 0.0;
  }

 private:
  RingBuffer<double> ring_;
  double sum_ = 0.0;
};

}  // namespace dufp
