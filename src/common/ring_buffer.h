// Fixed-capacity ring buffer used by the RAPL running-average windows and
// the controllers' short histories.  Header-only; trivially copyable
// payloads expected but not required.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "common/expect.h"

namespace dufp {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    DUFP_EXPECT(capacity > 0);
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }

  /// Append, evicting the oldest element when full.  Returns true if an
  /// element was evicted.
  bool push(const T& v) {
    const bool evicting = full();
    buf_[head_] = v;
    // Wrap with a branch, not a modulo: this runs once per simulated
    // socket-tick per averaging window and the integer division shows up.
    if (++head_ == buf_.size()) head_ = 0;
    if (evicting) {
      tail_ = head_;
    } else {
      ++size_;
    }
    return evicting;
  }

  /// Element `i` positions back from the newest (0 = newest).
  const T& from_newest(std::size_t i) const {
    DUFP_EXPECT(i < size_);
    const std::size_t idx = (head_ + buf_.size() - 1 - i) % buf_.size();
    return buf_[idx];
  }

  /// Element `i` positions forward from the oldest (0 = oldest).
  const T& from_oldest(std::size_t i) const {
    DUFP_EXPECT(i < size_);
    return buf_[(tail_ + i) % buf_.size()];
  }

  // head_ and tail_ are always in [0, capacity), so the common accessors
  // index directly instead of going through the modulo arithmetic of the
  // general from_*() forms.
  const T& newest() const {
    DUFP_EXPECT(size_ > 0);
    return buf_[head_ == 0 ? buf_.size() - 1 : head_ - 1];
  }
  const T& oldest() const {
    DUFP_EXPECT(size_ > 0);
    return buf_[tail_];
  }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

  /// Visit all elements oldest → newest.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) f(from_oldest(i));
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t tail_ = 0;  ///< oldest element
  std::size_t size_ = 0;
};

/// Windowed arithmetic mean over the last `capacity` samples, O(1) update.
///
/// Also tracks the length of the trailing run of bitwise-identical samples
/// so the simulation's event-leaping fast path can detect, in O(1), that
/// adding the same value again is a complete no-op (see steady_under).
class WindowedMean {
 public:
  explicit WindowedMean(std::size_t capacity) : ring_(capacity) {}

  void add(double v) {
    if (ring_.full()) sum_ -= ring_.oldest();
    ring_.push(v);
    sum_ += v;
    if (run_length_ > 0 && bit_equal(v, run_value_)) {
      if (run_length_ < ring_.capacity()) ++run_length_;
    } else {
      run_value_ = v;
      run_length_ = 1;
    }
  }

  double mean() const {
    return ring_.empty() ? 0.0 : sum_ / static_cast<double>(ring_.size());
  }
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return ring_.capacity(); }
  bool full() const { return ring_.full(); }
  void clear() {
    ring_.clear();
    sum_ = 0.0;
    run_length_ = 0;
    run_value_ = 0.0;
  }

  /// Length of the trailing run of bitwise-identical samples (capped at
  /// capacity).  O(1) pre-gate for steady_under.
  std::size_t run_length() const { return run_length_; }

  /// True when add(v) — repeated any number of times — would leave every
  /// observable of this window (mean, size, sum) bitwise unchanged: the
  /// window is full, every stored sample is bitwise `v` (so each future
  /// add evicts exactly what it inserts), and the running sum is a fixed
  /// point of the evict-then-insert update.
  bool steady_under(double v) const {
    return ring_.full() && run_length_ >= ring_.capacity() &&
           bit_equal(v, run_value_) && (sum_ - v) + v == sum_;
  }

 private:
  /// Bitwise equality: stricter than ==, so +0.0 / -0.0 (whose additive
  /// behaviour differs) never alias and NaN never reports steady.
  static bool bit_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  }

  RingBuffer<double> ring_;
  double sum_ = 0.0;
  double run_value_ = 0.0;       ///< value of the trailing identical run
  std::size_t run_length_ = 0;   ///< capped at capacity()
};

}  // namespace dufp
