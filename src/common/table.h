// ASCII table rendering for the benchmark harness.  Every figure/table
// bench prints its rows through this so output stays uniform and grep-able.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dufp {

/// Column-aligned plain-text table.  Usage:
///   TextTable t({"app", "slowdown %", "power %"});
///   t.add_row({"CG", "1.2", "-13.98"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for cell construction).
std::string fmt_double(double v, int precision = 2);

}  // namespace dufp
