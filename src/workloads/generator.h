// Synthetic workload generation: random but well-formed phase graphs for
// property tests and for exploring controller behaviour beyond the ten
// paper applications (examples/custom_workload).
#pragma once

#include "common/rng.h"
#include "workloads/workload.h"

namespace dufp::workloads {

struct GeneratorSpec {
  int phase_count = 4;          ///< distinct phases to create
  int sequence_length = 40;     ///< entries in the execution sequence
  double min_phase_seconds = 0.2;
  double max_phase_seconds = 3.0;

  /// Fraction of phases drawn memory-bound (OI < 1) vs compute-bound.
  double memory_bound_fraction = 0.5;

  /// Per-socket compute capability envelope (GFLOP/s).
  double max_gflops = 120.0;
  /// Bandwidth envelope (GB/s); generated phases never demand more.
  double max_gbps = 92.0;
};

/// Generates a valid random profile (every PhaseSpec passes validate()).
WorkloadProfile generate_workload(const GeneratorSpec& spec, Rng& rng,
                                  const std::string& name = "synthetic");

}  // namespace dufp::workloads
