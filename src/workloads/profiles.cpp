#include "workloads/profiles.h"

#include <array>
#include <stdexcept>

#include "common/string_util.h"

namespace dufp::workloads {
namespace {

// Shorthand builder: the aggregate-initializer order is
// {name, seconds, gflops, oi, w_cpu, w_mem, w_unc, w_fixed, cpu_act, mem_act}.
PhaseSpec phase(const char* name, double seconds, double gflops, double oi,
                double w_cpu, double w_mem, double w_unc, double w_fixed,
                double cpu_act, double mem_act) {
  PhaseSpec p;
  p.name = name;
  p.nominal_seconds = seconds;
  p.gflops_ref = gflops;
  p.oi = oi;
  p.w_cpu = w_cpu;
  p.w_mem = w_mem;
  p.w_unc = w_unc;
  p.w_fixed = w_fixed;
  p.cpu_activity = cpu_act;
  p.mem_activity = mem_act;
  return p;
}

// ---------------------------------------------------------------------------
// NPB BT (class D): three ADI sweeps per iteration.  The sweeps' DRAM
// traffic differs a lot (OI 1.2 / 1.8 / 2.6) while FLOPS stay within 15 %,
// so DUF's all-phase bandwidth guard trips continuously and pins the
// uncore high — the reason the paper records near-zero DUF savings on BT
// while DUFP (whose cap path ignores bandwidth below OI 100) still finds
// headroom at 20 % tolerance.
// ---------------------------------------------------------------------------
WorkloadProfile make_bt() {
  WorkloadProfile w("BT", "NPB block-tridiagonal solver, class D");
  w.add_phase(phase("x_solve", 0.50, 44.0, 1.2, 0.56, 0.20, 0.14, 0.10, 0.88, 0.85));
  w.add_phase(phase("y_solve", 0.50, 48.0, 1.8, 0.60, 0.16, 0.14, 0.10, 0.90, 0.80));
  w.add_phase(phase("z_solve", 0.50, 41.0, 2.6, 0.58, 0.14, 0.16, 0.12, 0.87, 0.70));
  w.loop(25, {"x_solve", "y_solve", "z_solve"});
  return w;
}

// ---------------------------------------------------------------------------
// NPB CG (class D): a long memory-only prologue (sparse matrix setup, ~5 %
// of the run — the phase studied in the paper's Fig. 1b/1c) followed by a
// homogeneous bandwidth-bound solve loop.
// ---------------------------------------------------------------------------
WorkloadProfile make_cg() {
  WorkloadProfile w("CG", "NPB conjugate gradient, class D");
  w.add_phase(phase("init", 2.0, 1.03, 0.012, 0.05, 0.86, 0.03, 0.06, 0.70, 1.0));
  w.add_phase(phase("solve", 1.52, 9.6, 0.12, 0.33, 0.58, 0.04, 0.05, 0.90, 1.0));
  w.then("init");
  w.then("solve", 25);
  return w;
}

// ---------------------------------------------------------------------------
// NPB EP (class D): embarrassingly parallel RNG — pure compute, nearly no
// DRAM traffic, so the uncore can sink to its floor for free (the paper's
// best power-savings case, dominated by uncore scaling).
// ---------------------------------------------------------------------------
WorkloadProfile make_ep() {
  WorkloadProfile w("EP", "NPB embarrassingly parallel, class D");
  w.add_phase(phase("rng_kernel", 29.5, 96.0, 400.0, 0.95, 0.004, 0.006, 0.04, 1.0, 0.08));
  w.add_phase(phase("reduction", 0.5, 6.0, 0.4, 0.20, 0.60, 0.05, 0.15, 0.60, 0.50));
  w.then("rng_kernel");
  w.then("reduction");
  return w;
}

// ---------------------------------------------------------------------------
// NPB FT (class D): alternating compute-heavy FFT butterflies and
// bandwidth-saturating transposes.  The OI swing across 1 makes every
// alternation a detected phase change (cap reset), and the long
// memory-bound transposes are where dynamic capping wins — the paper notes
// DUFP doubles DUF's savings on FT at 10 % tolerance.
// ---------------------------------------------------------------------------
WorkloadProfile make_ft() {
  WorkloadProfile w("FT", "NPB 3-D FFT, class D");
  w.add_phase(phase("fft_compute", 2.2, 62.0, 2.4, 0.56, 0.30, 0.06, 0.08, 0.95, 0.85));
  w.add_phase(phase("transpose", 1.8, 4.95, 0.055, 0.08, 0.84, 0.02, 0.06, 0.68, 1.0));
  w.loop(9, {"fft_compute", "transpose"});
  return w;
}

// ---------------------------------------------------------------------------
// NPB LU (class D): SSOR sweeps, moderately bandwidth-bound with an
// uncore-latency component (the pipelined wavefront).  Both DUF and DUFP
// show a small uncore-driven overhead here in the paper.
// ---------------------------------------------------------------------------
// The pipelined SSOR wavefront alternates quickly (sub-interval) between
// sweep and right-hand-side work.
WorkloadProfile make_lu() {
  WorkloadProfile w("LU", "NPB LU (SSOR) solver, class D");
  w.add_phase(phase("ssor_sweep", 0.09, 41.0, 0.65, 0.30, 0.50, 0.12, 0.08, 0.75, 0.95));
  w.add_phase(phase("rhs", 0.09, 45.0, 0.92, 0.34, 0.46, 0.10, 0.10, 0.78, 0.90));
  w.loop(200, {"ssor_sweep", "rhs"});
  return w;
}

// ---------------------------------------------------------------------------
// NPB MG (class D): V-cycles alternating bandwidth-saturated fine-grid
// smoothing with lower-traffic coarse-grid work.  One V-cycle (~180 ms)
// is shorter than the 200 ms measurement interval, so every sample blends
// the two regimes with a slowly drifting mixing ratio — the beat between
// cycle and interval produces the noisy FLOPS signal that makes MG the
// paper's hardest application (energy loss at high tolerance, small DRAM
// power loss at 0 %).
// ---------------------------------------------------------------------------
WorkloadProfile make_mg() {
  WorkloadProfile w("MG", "NPB multigrid, class D");
  w.add_phase(phase("smooth_fine", 0.12, 7.8, 0.085, 0.12, 0.78, 0.04, 0.06, 0.70, 1.0));
  w.add_phase(phase("coarse_levels", 0.06, 15.2, 0.40, 0.30, 0.44, 0.10, 0.16, 0.75, 0.80));
  w.loop(170, {"smooth_fine", "coarse_levels"});
  return w;
}

// ---------------------------------------------------------------------------
// NPB SP (class C — the paper uses C to stay in the 20-400 s window):
// ADI sweeps, more bandwidth-bound than BT, all OI below 1.
// ---------------------------------------------------------------------------
// Class C iterations are fast (~100 ms per ADI sweep on 64 cores), so as
// with MG the 200 ms sampler sees blended sweeps.
WorkloadProfile make_sp() {
  WorkloadProfile w("SP", "NPB scalar pentadiagonal solver, class C");
  w.add_phase(phase("adi_x", 0.10, 31.0, 0.78, 0.34, 0.46, 0.10, 0.10, 0.78, 0.90));
  w.add_phase(phase("adi_y", 0.10, 33.0, 0.88, 0.36, 0.44, 0.10, 0.10, 0.80, 0.88));
  w.add_phase(phase("adi_z", 0.10, 30.0, 0.90, 0.40, 0.36, 0.12, 0.12, 0.78, 0.80));
  w.loop(90, {"adi_x", "adi_y", "adi_z"});
  return w;
}

// ---------------------------------------------------------------------------
// NPB UA (class D): the paper's documented controller-challenging pattern —
// one compute-bound iteration followed by several memory-bound ones.  The
// compute iterations are shorter than the phase-detection latency at a
// 200 ms interval, so the cap is still low when they start (UA's small
// slowdown violation at 0 % tolerance, Sec. V-A).
// ---------------------------------------------------------------------------
WorkloadProfile make_ua() {
  WorkloadProfile w("UA", "NPB unstructured adaptive mesh, class D");
  w.add_phase(phase("ua_compute", 0.45, 70.0, 15.0, 0.84, 0.04, 0.04, 0.08, 1.0, 0.45));
  w.add_phase(phase("ua_memory", 0.30, 16.0, 0.25, 0.22, 0.62, 0.06, 0.10, 0.72, 0.95));
  for (int i = 0; i < 14; ++i) {
    w.then("ua_compute");
    w.then("ua_memory", 6);
  }
  return w;
}

// ---------------------------------------------------------------------------
// HPL 2.3 + MKL (N=91840, NB=224, P x Q = 8 x 8): panel factorizations
// between long AVX-512 DGEMM updates.  Nearly pure compute at very high
// power — capping costs frequency immediately, hence the paper's <7 %
// savings on CPU-bound codes.
// ---------------------------------------------------------------------------
WorkloadProfile make_hpl() {
  WorkloadProfile w("HPL", "High-Performance Linpack 2.3 (MKL)");
  w.add_phase(phase("panel", 0.90, 170.0, 6.0, 0.66, 0.16, 0.06, 0.12, 1.0, 0.80));
  w.add_phase(phase("dgemm_update", 3.50, 320.0, 42.0, 0.88, 0.03, 0.02, 0.07, 1.12, 0.50));
  w.loop(8, {"panel", "dgemm_update"});
  return w;
}

// ---------------------------------------------------------------------------
// LAMMPS (in.lj, run 100000): steady force computation with short
// neighbour-list rebuilds whose power spikes above the steady level.  The
// spikes are shorter than the 200 ms measurement interval — the paper's
// explanation (Sec. V-A) for LAMMPS' small tolerance violations: bursts
// are invisible to the controller but collide with a lowered cap.
// ---------------------------------------------------------------------------
WorkloadProfile make_lammps() {
  WorkloadProfile w("LAMMPS", "LAMMPS molecular dynamics, in.lj");
  w.add_phase(phase("force_compute", 0.22, 75.0, 9.0, 0.76, 0.10, 0.06, 0.08, 0.95, 0.60));
  w.add_phase(phase("neigh_rebuild", 0.03, 105.0, 3.2, 0.80, 0.10, 0.04, 0.06, 1.30, 0.90));
  w.loop(140, {"force_compute", "neigh_rebuild"});
  return w;
}

struct AppEntry {
  AppId id;
  const char* name;
  WorkloadProfile (*make)();
};

constexpr std::array<AppEntry, 10> kApps{{
    {AppId::bt, "BT", make_bt},
    {AppId::cg, "CG", make_cg},
    {AppId::ep, "EP", make_ep},
    {AppId::ft, "FT", make_ft},
    {AppId::lu, "LU", make_lu},
    {AppId::mg, "MG", make_mg},
    {AppId::sp, "SP", make_sp},
    {AppId::ua, "UA", make_ua},
    {AppId::hpl, "HPL", make_hpl},
    {AppId::lammps, "LAMMPS", make_lammps},
}};

const AppEntry& entry(AppId id) {
  for (const auto& e : kApps) {
    if (e.id == id) return e;
  }
  throw std::invalid_argument("unknown AppId");
}

}  // namespace

std::string app_name(AppId id) { return entry(id).name; }

const std::vector<AppId>& all_apps() {
  static const std::vector<AppId> ids = [] {
    std::vector<AppId> v;
    for (const auto& e : kApps) v.push_back(e.id);
    return v;
  }();
  return ids;
}

const WorkloadProfile& profile(AppId id) {
  // One cached profile per app; profiles are immutable after construction.
  static const std::array<WorkloadProfile, kApps.size()> profiles = [] {
    std::array<WorkloadProfile, kApps.size()> arr;
    for (std::size_t i = 0; i < kApps.size(); ++i) arr[i] = kApps[i].make();
    return arr;
  }();
  for (std::size_t i = 0; i < kApps.size(); ++i) {
    if (kApps[i].id == id) return profiles[i];
  }
  throw std::invalid_argument("unknown AppId");
}

AppId app_by_name(const std::string& name) {
  for (const auto& e : kApps) {
    if (iequals(name, e.name)) return e.id;
  }
  throw std::invalid_argument("unknown application: " + name);
}

}  // namespace dufp::workloads
