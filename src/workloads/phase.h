// Phase-level application description.
//
// Each application is modelled as a sequence of phases; a phase is
// characterized by what the paper's measurement stack would observe while
// it runs (FLOP rate, operational intensity) and by how its execution time
// responds to the two actuators (the w_* decomposition, see
// hwmodel/demand.h).  Rates are per socket at the reference operating
// point (all-core turbo, max uncore, no cap).
#pragma once

#include <string>

#include "hwmodel/demand.h"

namespace dufp::workloads {

struct PhaseSpec {
  std::string name;
  double nominal_seconds = 1.0;  ///< duration at the reference point

  double gflops_ref = 1.0;  ///< FLOP rate at reference, GFLOP/s per socket
  double oi = 1.0;          ///< operational intensity, FLOP per DRAM byte

  // Execution-time decomposition (must sum to 1).
  double w_cpu = 0.5;
  double w_mem = 0.3;
  double w_unc = 0.1;
  double w_fixed = 0.1;

  // Power activity factors.
  double cpu_activity = 0.9;
  double mem_activity = 0.8;

  /// DRAM traffic implied by the FLOP rate and OI (GB/s at reference).
  double bytes_rate_ref_gbps() const { return gflops_ref / oi; }

  /// Converts to the demand struct the socket model consumes.
  hw::PhaseDemand demand() const;

  /// Throws std::invalid_argument when inconsistent (weights not summing
  /// to 1, non-positive duration/rates, activity out of range).
  void validate() const;
};

}  // namespace dufp::workloads
