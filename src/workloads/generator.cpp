#include "workloads/generator.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"
#include "common/string_util.h"

namespace dufp::workloads {

WorkloadProfile generate_workload(const GeneratorSpec& spec, Rng& rng,
                                  const std::string& name) {
  DUFP_EXPECT(spec.phase_count > 0);
  DUFP_EXPECT(spec.sequence_length > 0);
  DUFP_EXPECT(spec.min_phase_seconds > 0.0 &&
              spec.min_phase_seconds <= spec.max_phase_seconds);
  DUFP_EXPECT(spec.memory_bound_fraction >= 0.0 &&
              spec.memory_bound_fraction <= 1.0);

  WorkloadProfile w(name, "generated workload");

  for (int i = 0; i < spec.phase_count; ++i) {
    PhaseSpec p;
    p.name = "phase" + std::to_string(i);
    p.nominal_seconds =
        rng.uniform(spec.min_phase_seconds, spec.max_phase_seconds);

    const bool memory_bound = rng.next_double() < spec.memory_bound_fraction;
    if (memory_bound) {
      // OI in [0.01, 1): traffic-dominated.  Pick bandwidth first so the
      // demand stays within the machine envelope, then derive flops.
      p.oi = std::exp(rng.uniform(std::log(0.01), std::log(1.0)));
      const double gbps = rng.uniform(0.3 * spec.max_gbps, spec.max_gbps);
      p.gflops_ref = std::max(0.05, gbps * p.oi);
      p.w_mem = rng.uniform(0.45, 0.85);
      p.w_cpu = rng.uniform(0.05, 0.95 - p.w_mem);
      p.w_unc = rng.uniform(0.0, 0.95 - p.w_mem - p.w_cpu);
      p.cpu_activity = rng.uniform(0.6, 1.0);
      p.mem_activity = rng.uniform(0.7, 1.0);
    } else {
      // OI in [1, 500): compute-dominated.
      p.oi = std::exp(rng.uniform(std::log(1.0), std::log(500.0)));
      p.gflops_ref = rng.uniform(0.2 * spec.max_gflops, spec.max_gflops);
      // Keep implied bandwidth within the envelope.
      const double gbps = p.gflops_ref / p.oi;
      if (gbps > spec.max_gbps) p.gflops_ref = spec.max_gbps * p.oi;
      p.w_cpu = rng.uniform(0.5, 0.9);
      p.w_mem = rng.uniform(0.0, 0.95 - p.w_cpu);
      p.w_unc = rng.uniform(0.0, 0.95 - p.w_cpu - p.w_mem);
      p.cpu_activity = rng.uniform(0.8, 1.2);
      p.mem_activity = rng.uniform(0.1, 0.8);
    }
    p.w_fixed = 1.0 - p.w_cpu - p.w_mem - p.w_unc;
    w.add_phase(p);
  }

  for (int i = 0; i < spec.sequence_length; ++i) {
    const auto idx = static_cast<std::size_t>(rng.next_u64() %
                                              static_cast<std::uint64_t>(
                                                  spec.phase_count));
    w.then(w.phase(idx).name);
  }
  w.validate();
  return w;
}

}  // namespace dufp::workloads
