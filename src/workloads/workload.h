// Workload profiles (static descriptions) and instances (runtime state
// with per-run jitter).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/expect.h"
#include "common/rng.h"
#include "workloads/phase.h"

namespace dufp::workloads {

/// A named application: a phase library plus an execution sequence over
/// it.  Built with the fluent helpers; `validate()` is called by
/// WorkloadInstance so malformed profiles fail loudly at instantiation.
class WorkloadProfile {
 public:
  WorkloadProfile() = default;
  WorkloadProfile(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }

  /// Registers a phase (name must be unique within the profile).
  WorkloadProfile& add_phase(PhaseSpec spec);

  /// Appends `repeats` executions of the named phase to the sequence.
  WorkloadProfile& then(const std::string& phase_name, int repeats = 1);

  /// Appends `times` repetitions of the given phase-name cycle.
  WorkloadProfile& loop(int times, const std::vector<std::string>& cycle);

  const std::vector<PhaseSpec>& phases() const { return phases_; }
  const std::vector<std::size_t>& sequence() const { return sequence_; }

  std::size_t phase_index(const std::string& phase_name) const;
  const PhaseSpec& phase(std::size_t index) const {
    DUFP_EXPECT(index < phases_.size());
    return phases_[index];
  }

  /// Interned phase name: phase names are unique within a profile (see
  /// add_phase), so a phase *index* is a stable, allocation-free key for a
  /// phase and index equality is name equality.  The view stays valid for
  /// the profile's lifetime; hot-path consumers pass indices around and
  /// resolve to a name only at the edges (logging, CSV, user listeners).
  std::string_view phase_name(std::size_t index) const {
    return phase(index).name;
  }

  /// Total nominal (unjittered) duration of the sequence.
  double nominal_total_seconds() const;

  /// Validates every phase and the sequence; throws on error.
  void validate() const;

 private:
  std::string name_;
  std::string description_;
  std::vector<PhaseSpec> phases_;
  std::vector<std::size_t> sequence_;
};

/// Runtime state of one socket's share of an application run.  Progress
/// is measured in *nominal seconds*: executing for `dt` wall seconds at
/// progress speed `s` consumes `dt * s` nominal seconds.
class WorkloadInstance {
 public:
  /// `jitter_sigma` is the relative 1-sigma variation applied to each
  /// sequence entry's duration (models run-to-run variation: page
  /// placement, OS noise); durations are drawn once at construction so a
  /// given (profile, rng) pair replays identically.
  WorkloadInstance(const WorkloadProfile& profile, Rng jitter_rng,
                   double jitter_sigma = 0.008);

  const WorkloadProfile& profile() const { return profile_; }

  bool finished() const { return position_ >= durations_.size(); }

  // The accessors below run once per socket per simulated tick; they are
  // defined here so the engine's per-tick loop inlines them.

  /// Current phase spec / demand; requires !finished().
  const PhaseSpec& current_phase() const {
    DUFP_EXPECT(!finished());
    return profile_.phase(profile_.sequence()[position_]);
  }
  hw::PhaseDemand current_demand() const {
    if (finished()) return hw::PhaseDemand::make_idle();
    return current_phase().demand();
  }

  /// Index (into profile().phases()) of the current phase; requires
  /// !finished().  The engine's allocation-free transition tracking keys
  /// on this instead of copying phase-name strings.
  std::size_t current_phase_idx() const {
    DUFP_EXPECT(!finished());
    return profile_.sequence()[position_];
  }

  /// Nominal seconds left in the current sequence entry.
  double remaining_in_phase() const {
    DUFP_EXPECT(!finished());
    return durations_[position_] - consumed_in_current_;
  }

  /// Jittered nominal seconds left in the whole sequence (0 when
  /// finished).  O(1): the socket-parallel engine queries this every batch
  /// to bound how many ticks can run before any workload could finish.
  double remaining_nominal_seconds() const {
    return remaining_after_[position_] - consumed_in_current_;
  }

  /// Consumes `nominal_seconds` of progress, crossing sequence entries as
  /// needed.  Requires nominal_seconds >= 0.
  void advance(double nominal_seconds);

  /// Progress accumulators advance() maintains, exposed so the engine's
  /// event-leaping fast path can replay the exact per-tick additions
  /// externally (one add per accumulator per tick, same order and values
  /// as advance()) and restore the results.
  double consumed_in_current() const { return consumed_in_current_; }
  double consumed_total() const { return consumed_total_; }

  /// Restores progress advanced externally (see above).  The leap must
  /// stay strictly inside the current sequence entry: requires
  /// !finished(), monotone progress, and consumed_in_current below the
  /// entry's jittered duration.
  void restore_progress(double consumed_in_current, double consumed_total);

  std::size_t position() const { return position_; }
  std::size_t total_steps() const { return durations_.size(); }

  /// Jittered total duration (what a perfectly unthrottled run takes).
  double total_nominal_seconds() const;
  double consumed_nominal_seconds() const;

 private:
  const WorkloadProfile& profile_;
  std::vector<double> durations_;  ///< jittered, index-aligned with sequence
  /// remaining_after_[i] = sum of durations_[i..end); one trailing 0 entry
  /// makes remaining_nominal_seconds() branch-free at the finish line.
  std::vector<double> remaining_after_;
  std::size_t position_ = 0;
  double consumed_in_current_ = 0.0;
  double consumed_total_ = 0.0;
};

}  // namespace dufp::workloads
