#include "workloads/phase.h"

#include <cmath>
#include <stdexcept>

namespace dufp::workloads {

hw::PhaseDemand PhaseSpec::demand() const {
  hw::PhaseDemand d;
  d.w_cpu = w_cpu;
  d.w_mem = w_mem;
  d.w_unc = w_unc;
  d.w_fixed = w_fixed;
  d.flops_rate_ref = gflops_ref * 1e9;
  d.bytes_rate_ref = gflops_ref * 1e9 / oi;
  d.cpu_activity = cpu_activity;
  d.mem_activity = mem_activity;
  d.idle = false;
  return d;
}

void PhaseSpec::validate() const {
  auto fail = [this](const std::string& why) {
    throw std::invalid_argument("PhaseSpec '" + name + "': " + why);
  };
  if (name.empty()) fail("empty name");
  if (!(nominal_seconds > 0.0)) fail("nominal_seconds must be positive");
  if (!(gflops_ref > 0.0)) fail("gflops_ref must be positive");
  if (!(oi > 0.0)) fail("oi must be positive");
  if (w_cpu < 0.0 || w_mem < 0.0 || w_unc < 0.0 || w_fixed < 0.0)
    fail("negative time weight");
  if (std::abs(w_cpu + w_mem + w_unc + w_fixed - 1.0) > 1e-6)
    fail("time weights must sum to 1");
  // AVX-heavy code can exceed the scalar activity baseline, hence the
  // allowance above 1.0 (HPL, LAMMPS neighbour rebuilds).
  if (cpu_activity < 0.0 || cpu_activity > 1.5) fail("cpu_activity range");
  if (mem_activity < 0.0 || mem_activity > 1.5) fail("mem_activity range");
}

}  // namespace dufp::workloads
