#include "workloads/trace_replay.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/expect.h"
#include "common/string_util.h"

namespace dufp::workloads {
namespace {

bool within(double a, double b, double tol) {
  const double hi = std::max(std::abs(a), std::abs(b));
  if (hi <= 0.0) return true;
  return std::abs(a - b) <= tol * hi;
}

}  // namespace

std::vector<TraceSample> parse_trace_csv(std::istream& in) {
  std::vector<TraceSample> out;
  std::string line;
  std::size_t line_no = 0;

  // Header: locate the required columns by name.
  int col_seconds = -1;
  int col_gflops = -1;
  int col_gbps = -1;
  int col_cpu = -1;
  int col_mem = -1;
  if (!std::getline(in, line)) {
    throw std::runtime_error("trace: empty input");
  }
  ++line_no;
  {
    const auto cols = split(line, ',');
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const auto name = to_lower(trim(cols[i]));
      const int idx = static_cast<int>(i);
      if (name == "seconds") col_seconds = idx;
      if (name == "gflops") col_gflops = idx;
      if (name == "gbps") col_gbps = idx;
      if (name == "cpu_activity") col_cpu = idx;
      if (name == "mem_activity") col_mem = idx;
    }
  }
  if (col_seconds < 0 || col_gflops < 0 || col_gbps < 0) {
    throw std::runtime_error(
        "trace: header must contain seconds,gflops,gbps");
  }

  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    const auto cols = split(line, ',');
    auto field = [&](int idx, double def, const char* what) {
      if (idx < 0) return def;
      if (idx >= static_cast<int>(cols.size())) {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": missing column " + what);
      }
      double v = 0.0;
      if (!parse_double(cols[static_cast<std::size_t>(idx)], v)) {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": bad number in column " + what);
      }
      return v;
    };
    TraceSample s;
    s.seconds = field(col_seconds, 0.0, "seconds");
    s.gflops = field(col_gflops, 0.0, "gflops");
    s.gbps = field(col_gbps, 0.0, "gbps");
    s.cpu_activity = field(col_cpu, 0.9, "cpu_activity");
    s.mem_activity = field(col_mem, 0.8, "mem_activity");
    if (s.seconds <= 0.0) {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": seconds must be positive");
    }
    out.push_back(s);
  }
  return out;
}

std::vector<TraceSample> load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return parse_trace_csv(in);
}

WorkloadProfile profile_from_trace(const std::vector<TraceSample>& trace,
                                   const ReplayOptions& options,
                                   const std::string& name) {
  if (trace.empty()) {
    throw std::invalid_argument("profile_from_trace: empty trace");
  }
  DUFP_EXPECT(options.merge_tolerance >= 0.0);
  DUFP_EXPECT(options.peak_bw_gbps > 0.0);
  DUFP_EXPECT(options.w_fixed >= 0.0 && options.w_fixed < 1.0);

  // Segment: merge runs of behaviourally similar samples (duration-
  // weighted averages), so a 10k-row trace becomes a handful of phases.
  struct Segment {
    double seconds = 0.0;
    double gflops = 0.0;  // duration-weighted mean
    double gbps = 0.0;
    double cpu_act = 0.0;
    double mem_act = 0.0;
  };
  std::vector<Segment> segments;
  for (const auto& s : trace) {
    const bool mergeable =
        !segments.empty() &&
        within(segments.back().gflops, s.gflops, options.merge_tolerance) &&
        within(segments.back().gbps, s.gbps, options.merge_tolerance);
    if (mergeable) {
      Segment& seg = segments.back();
      const double w_old = seg.seconds;
      const double w_new = s.seconds;
      const double total = w_old + w_new;
      seg.gflops = (seg.gflops * w_old + s.gflops * w_new) / total;
      seg.gbps = (seg.gbps * w_old + s.gbps * w_new) / total;
      seg.cpu_act = (seg.cpu_act * w_old + s.cpu_activity * w_new) / total;
      seg.mem_act = (seg.mem_act * w_old + s.mem_activity * w_new) / total;
      seg.seconds = total;
    } else {
      segments.push_back(Segment{s.seconds, s.gflops, s.gbps,
                                 s.cpu_activity, s.mem_activity});
    }
  }

  // Deduplicate similar segments into shared PhaseSpecs so loops in the
  // application show up as repeated visits of one phase.
  WorkloadProfile w(name, "replayed from trace (" +
                              std::to_string(trace.size()) + " samples)");
  std::vector<std::string> order;
  std::vector<Segment> kinds;
  for (const auto& seg : segments) {
    int kind = -1;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      if (within(kinds[k].gflops, seg.gflops, options.merge_tolerance) &&
          within(kinds[k].gbps, seg.gbps, options.merge_tolerance) &&
          std::abs(kinds[k].seconds - seg.seconds) <=
              options.merge_tolerance *
                  std::max(kinds[k].seconds, seg.seconds)) {
        kind = static_cast<int>(k);
        break;
      }
    }
    if (kind < 0) {
      kinds.push_back(seg);
      kind = static_cast<int>(kinds.size()) - 1;

      PhaseSpec p;
      p.name = "phase" + std::to_string(kind);
      p.nominal_seconds = seg.seconds;
      p.gflops_ref = std::max(seg.gflops, 0.01);
      const double gbps = std::max(seg.gbps, 1e-3);
      p.oi = p.gflops_ref / gbps;
      // Time decomposition heuristic: the memory share follows how close
      // the traffic sits to the machine's peak; the rest is core-bound.
      const double mem_share =
          std::clamp(gbps / options.peak_bw_gbps, 0.0, 1.0);
      const double variable = 1.0 - options.w_fixed;
      p.w_mem = variable * mem_share * 0.9;
      p.w_unc = variable * mem_share * 0.1;
      p.w_cpu = variable - p.w_mem - p.w_unc;
      p.w_fixed = options.w_fixed;
      p.cpu_activity = std::clamp(seg.cpu_act, 0.05, 1.5);
      p.mem_activity = std::clamp(seg.mem_act, 0.0, 1.5);
      w.add_phase(p);
    }
    order.push_back("phase" + std::to_string(kind));
  }
  for (const auto& phase_name : order) w.then(phase_name);
  w.validate();
  return w;
}

}  // namespace dufp::workloads
