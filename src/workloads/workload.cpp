#include "workloads/workload.h"

#include <algorithm>
#include <stdexcept>

#include "common/expect.h"

namespace dufp::workloads {

// ---------------------------------------------------------------------------
// WorkloadProfile
// ---------------------------------------------------------------------------

WorkloadProfile& WorkloadProfile::add_phase(PhaseSpec spec) {
  spec.validate();
  for (const auto& p : phases_) {
    if (p.name == spec.name) {
      throw std::invalid_argument("WorkloadProfile '" + name_ +
                                  "': duplicate phase " + spec.name);
    }
  }
  phases_.push_back(std::move(spec));
  return *this;
}

std::size_t WorkloadProfile::phase_index(const std::string& phase_name) const {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == phase_name) return i;
  }
  throw std::invalid_argument("WorkloadProfile '" + name_ +
                              "': unknown phase " + phase_name);
}

WorkloadProfile& WorkloadProfile::then(const std::string& phase_name,
                                       int repeats) {
  DUFP_EXPECT(repeats > 0);
  const std::size_t idx = phase_index(phase_name);
  for (int i = 0; i < repeats; ++i) sequence_.push_back(idx);
  return *this;
}

WorkloadProfile& WorkloadProfile::loop(int times,
                                       const std::vector<std::string>& cycle) {
  DUFP_EXPECT(times > 0);
  DUFP_EXPECT(!cycle.empty());
  std::vector<std::size_t> cycle_idx;
  cycle_idx.reserve(cycle.size());
  for (const auto& n : cycle) cycle_idx.push_back(phase_index(n));
  for (int t = 0; t < times; ++t) {
    sequence_.insert(sequence_.end(), cycle_idx.begin(), cycle_idx.end());
  }
  return *this;
}

double WorkloadProfile::nominal_total_seconds() const {
  double total = 0.0;
  for (std::size_t idx : sequence_) total += phases_[idx].nominal_seconds;
  return total;
}

void WorkloadProfile::validate() const {
  if (name_.empty()) throw std::invalid_argument("WorkloadProfile: no name");
  if (phases_.empty())
    throw std::invalid_argument("WorkloadProfile '" + name_ + "': no phases");
  if (sequence_.empty())
    throw std::invalid_argument("WorkloadProfile '" + name_ +
                                "': empty sequence");
  for (const auto& p : phases_) p.validate();
  for (std::size_t idx : sequence_) {
    if (idx >= phases_.size())
      throw std::invalid_argument("WorkloadProfile '" + name_ +
                                  "': sequence index out of range");
  }
}

// ---------------------------------------------------------------------------
// WorkloadInstance
// ---------------------------------------------------------------------------

WorkloadInstance::WorkloadInstance(const WorkloadProfile& profile,
                                   Rng jitter_rng, double jitter_sigma)
    : profile_(profile) {
  DUFP_EXPECT(jitter_sigma >= 0.0 && jitter_sigma < 0.3);
  profile.validate();
  durations_.reserve(profile.sequence().size());
  for (std::size_t idx : profile.sequence()) {
    const double base = profile.phase(idx).nominal_seconds;
    // Multiplicative jitter, floored so a deep negative draw cannot
    // produce a degenerate phase.
    const double factor =
        std::max(0.5, 1.0 + jitter_rng.gaussian(0.0, jitter_sigma));
    durations_.push_back(base * factor);
  }
  remaining_after_.assign(durations_.size() + 1, 0.0);
  for (std::size_t i = durations_.size(); i-- > 0;) {
    remaining_after_[i] = remaining_after_[i + 1] + durations_[i];
  }
}

void WorkloadInstance::advance(double nominal_seconds) {
  DUFP_EXPECT(nominal_seconds >= 0.0);
  consumed_total_ += nominal_seconds;
  while (nominal_seconds > 0.0 && !finished()) {
    const double remaining = durations_[position_] - consumed_in_current_;
    if (nominal_seconds < remaining) {
      consumed_in_current_ += nominal_seconds;
      return;
    }
    nominal_seconds -= remaining;
    ++position_;
    consumed_in_current_ = 0.0;
  }
}

void WorkloadInstance::restore_progress(double consumed_in_current,
                                        double consumed_total) {
  DUFP_EXPECT(!finished());
  DUFP_EXPECT(consumed_in_current >= consumed_in_current_);
  DUFP_EXPECT(consumed_total >= consumed_total_);
  DUFP_EXPECT(consumed_in_current < durations_[position_]);
  consumed_in_current_ = consumed_in_current;
  consumed_total_ = consumed_total;
}

double WorkloadInstance::total_nominal_seconds() const {
  double total = 0.0;
  for (double d : durations_) total += d;
  return total;
}

double WorkloadInstance::consumed_nominal_seconds() const {
  return std::min(consumed_total_, total_nominal_seconds());
}

}  // namespace dufp::workloads
