// The paper's application set (Sec. IV-B): NPB-3.3.1 OpenMP BT, CG, EP,
// FT, LU, MG, SP, UA (classes chosen for 20-400 s runs), HPL 2.3 + MKL,
// and LAMMPS (in.lj).  Each profile is a phase-graph model reproducing the
// FLOPS / bandwidth / power *time series* the application shows to the
// measurement stack — which is all DUF/DUFP ever observe — including the
// behavioural quirks the paper calls out per application (CG's
// memory-only prologue, UA's compute/memory alternation, LAMMPS' short
// power bursts, EP's uncore insensitivity, BT's bandwidth-noisy
// sub-phases).
#pragma once

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace dufp::workloads {

enum class AppId {
  bt,
  cg,
  ep,
  ft,
  lu,
  mg,
  sp,
  ua,
  hpl,
  lammps,
};

/// Display name used in figures ("CG", "HPL", "LAMMPS"...).
std::string app_name(AppId id);

/// All ten applications, in the paper's figure order.
const std::vector<AppId>& all_apps();

/// The profile for an application (built once, cached).
const WorkloadProfile& profile(AppId id);

/// Lookup by display name (case-insensitive); throws on unknown names.
AppId app_by_name(const std::string& name);

}  // namespace dufp::workloads
