// Trace replay: build a WorkloadProfile from a measured time series.
//
// A user profiling a real application (e.g. with PAPI at DUF's own 200 ms
// cadence) gets a CSV of per-interval FLOPS and bandwidth.  This module
// turns such a trace into a phase-graph model by segmenting the series
// wherever the observable behaviour shifts, so controller studies can run
// against measured applications, not just the ten built-in profiles.
//
// CSV format (header required, extra columns ignored):
//   seconds,gflops,gbps[,cpu_activity][,mem_activity]
// Each row describes one homogeneous slice of execution: `seconds` of
// wall time at `gflops` FLOP rate and `gbps` DRAM traffic (per socket,
// at the machine's reference operating point).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace dufp::workloads {

/// One trace row.
struct TraceSample {
  double seconds = 0.0;
  double gflops = 0.0;
  double gbps = 0.0;
  double cpu_activity = 0.9;
  double mem_activity = 0.8;
};

struct ReplayOptions {
  /// Consecutive samples whose FLOPS and bandwidth are both within this
  /// relative distance are merged into one phase.
  double merge_tolerance = 0.10;

  /// Time-decomposition heuristic: bandwidth demand above this fraction
  /// of the machine peak is treated as fully memory-bound; scaled
  /// proportionally below.
  double peak_bw_gbps = 96.0;

  /// Fixed (actuator-invariant) fraction assumed for every phase.
  double w_fixed = 0.08;
};

/// Parses the CSV format above; throws std::runtime_error with a line
/// number on malformed input.
std::vector<TraceSample> parse_trace_csv(std::istream& in);
std::vector<TraceSample> load_trace_csv(const std::string& path);

/// Segments the samples into phases and builds a runnable profile.
/// Throws std::invalid_argument on an empty trace.
WorkloadProfile profile_from_trace(const std::vector<TraceSample>& trace,
                                   const ReplayOptions& options = {},
                                   const std::string& name = "trace");

}  // namespace dufp::workloads
