// dufp_shard_worker — one process of a sharded experiment-grid run.
//
// Subcommands (see tools/shard_run.sh for the orchestrated flow and
// DESIGN.md § Sharded execution / § Failure model for the contract):
//
//   spec   [--reference | --spec FILE]
//          Print the canonical spec JSON (+ fingerprint to stderr).
//          `--reference` (default) emits the built-in reference grid —
//          the starting point for writing custom specs.
//
//   plan   --spec FILE
//          Print the job table (job, cell, repetition, label, seed) the
//          spec enumerates — identical in every process, which is what
//          makes job indices portable shard identities.
//
//   run    (--spec FILE | --resume MANIFEST) --out FILE
//          [--shard K --shards N] [--threads T]
//          [--chunk-size C --claim-dir DIR] [--owner ID] [--lease-ttl S]
//          [--attempt A]
//          Execute this worker's share of the jobs and stream the
//          versioned JSONL to --out.  The stream goes to `FILE.partial`
//          and is fsync'd + atomically renamed to FILE on success, so a
//          crash never leaves a half-written file that passes the
//          header check — torn output stays honestly `.partial` and is
//          exactly what `gather --partial` salvages.  Default is static
//          round-robin; --chunk-size switches to dynamic lease-based
//          chunk claiming in --claim-dir (owner id + heartbeat + TTL
//          steal; a crashed worker's chunks become reclaimable after
//          --lease-ttl seconds).  --resume runs exactly the manifest's
//          missing jobs (the spec is embedded in the manifest).
//          DUFP_CHAOS / DUFP_CHAOS_SEED inject seeded self-SIGKILLs for
//          recovery drills.
//
//   gather --spec FILE --out PREFIX [--partial] FILES...
//          Merge shard JSONL files: validates headers/fingerprints,
//          demands every job exactly once, aggregates bit-identically
//          to a serial run, and writes PREFIX.csv (+ PREFIX.prom /
//          telemetry exports when the spec has telemetry on).  With
//          --partial it salvages every complete record from damaged
//          files, tolerates idempotent duplicates, and — when jobs are
//          still missing — writes a versioned retry manifest to
//          PREFIX.retry.json and exits 6 instead of failing.
//
//   serial --spec FILE --out PREFIX [--threads T]
//          Run the whole grid in this process and write the same
//          outputs — the byte-identical reference for `gather`.
//
//   supervise --spec FILE --out-dir DIR [--workers N] [--chunk-size C]
//          [--threads T] [--lease-ttl S] [--max-restarts R]
//          [--deadline S] [--gather PREFIX]
//          Run the grid under the fault-tolerant ShardSupervisor:
//          dynamic-mode workers are forked, monitored, restarted with
//          exponential backoff when they crash, and a chunk that kills
//          its worker twice is quarantined.  With --gather, finishes
//          with a partial gather of everything the workers produced.
//
//   fleet-spec / fleet-run / fleet-gather / fleet-serial / fleet-supervise
//          The same five verbs over a *fleet* spec (src/fleet): a job is
//          one node simulation under the hierarchical allocation plan,
//          and the wire/lease/salvage/resume/exit-code contract is
//          identical.  Outputs are PREFIX.alloc.csv (per-epoch
//          allocation trace), PREFIX.summary.csv (fleet scorecard) and
//          PREFIX.prom (fleet telemetry); an incomplete fleet-gather
//          writes PREFIX.retry.json (a dufp-fleet-retry manifest that
//          fleet-run --resume executes) and exits 6.
//
// Exit codes (stable contract, used by tools/ and the supervisor):
//   0  success
//   1  internal error (unexpected exception)
//   2  usage error (bad flags)
//   3  spec/format mismatch (wrong format, version, fingerprint, or an
//      invalid spec/manifest)
//   4  job execution failure (the simulation itself threw)
//   5  I/O failure (cannot open/write/fsync/rename an output)
//   6  incomplete gather (--partial salvaged what it could and wrote a
//      retry manifest) or incomplete supervision
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "fleet/shard.h"
#include "fleet/spec.h"
#include "harness/options.h"
#include "harness/shard.h"
#include "harness/supervisor.h"
#include "telemetry/export.h"

namespace {

using dufp::strf;
using dufp::harness::GatherOptions;
using dufp::harness::GridOutputs;
using dufp::harness::GridSpec;
using dufp::harness::RetryManifest;
using dufp::harness::ShardFormatError;

constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitSpec = 3;
constexpr int kExitJob = 4;
constexpr int kExitIo = 5;
constexpr int kExitIncomplete = 6;

/// An error that already knows its documented exit code.
struct CliError : std::runtime_error {
  CliError(int code_in, const std::string& what)
      : std::runtime_error(what), code(code_in) {}
  int code;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "dufp_shard_worker: %s\n", what.c_str());
  std::fprintf(
      stderr,
      "usage: dufp_shard_worker spec [--reference|--spec FILE]\n"
      "       dufp_shard_worker plan --spec FILE\n"
      "       dufp_shard_worker run (--spec FILE | --resume MANIFEST)"
      " --out FILE\n"
      "           [--shard K --shards N] [--threads T]"
      " [--chunk-size C --claim-dir DIR]\n"
      "           [--owner ID] [--lease-ttl S] [--attempt A]\n"
      "       dufp_shard_worker gather --spec FILE --out PREFIX"
      " [--partial] FILES...\n"
      "       dufp_shard_worker serial --spec FILE --out PREFIX"
      " [--threads T]\n"
      "       dufp_shard_worker supervise --spec FILE --out-dir DIR"
      " [--workers N]\n"
      "           [--chunk-size C] [--threads T] [--lease-ttl S]"
      " [--max-restarts R]\n"
      "           [--deadline S] [--gather PREFIX]\n"
      "       dufp_shard_worker fleet-spec [--reference|--spec FILE]\n"
      "       dufp_shard_worker fleet-run (--spec FILE | --resume MANIFEST)"
      " --out FILE\n"
      "           [--shard K --shards N] [--chunk-size C --claim-dir DIR]"
      " [--owner ID]\n"
      "           [--lease-ttl S] [--attempt A]\n"
      "       dufp_shard_worker fleet-gather --spec FILE --out PREFIX"
      " [--partial] FILES...\n"
      "       dufp_shard_worker fleet-serial --spec FILE --out PREFIX\n"
      "       dufp_shard_worker fleet-supervise --spec FILE --out-dir DIR"
      " [--workers N]\n"
      "           [--chunk-size C] [--lease-ttl S] [--max-restarts R]"
      " [--deadline S]\n"
      "           [--gather PREFIX]\n"
      "exit codes: 0 ok, 1 internal, 2 usage, 3 spec mismatch, 4 job"
      " failure,\n"
      "            5 I/O failure, 6 incomplete (retry manifest written)\n");
  std::exit(kExitUsage);
}

struct Args {
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (key == "reference" || key == "partial") {
        args.options.emplace(key, "1");
        continue;
      }
      if (i + 1 >= argc) usage_error("missing value for --" + key);
      args.options[key] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int get_int(const Args& args, const std::string& key, int fallback) {
  const auto it = args.options.find(key);
  if (it == args.options.end()) return fallback;
  try {
    return std::stoi(it->second);
  } catch (const std::exception&) {
    usage_error("--" + key + " wants an integer, got '" + it->second + "'");
  }
}

double get_double(const Args& args, const std::string& key, double fallback) {
  const auto it = args.options.find(key);
  if (it == args.options.end()) return fallback;
  double out = 0.0;
  if (!dufp::parse_double(it->second, out)) {
    usage_error("--" + key + " wants a number, got '" + it->second + "'");
  }
  return out;
}

GridSpec load_spec(const Args& args) {
  const auto it = args.options.find("spec");
  if (it == args.options.end()) usage_error("--spec FILE is required");
  return GridSpec::load(it->second);
}

std::string require_out(const Args& args) {
  const auto it = args.options.find("out");
  if (it == args.options.end()) usage_error("--out is required");
  return it->second;
}

/// DUFP_CHAOS / DUFP_CHAOS_SEED through the strict aggregated-validation
/// env parser (a typo must fail loudly, like every other DUFP_ knob).
dufp::harness::ChaosOptions chaos_from_env() {
  const auto env = dufp::harness::BenchOptions::from_env();
  dufp::harness::ChaosOptions chaos;
  chaos.kill_rate = env.chaos_kill_rate;
  chaos.seed = env.chaos_seed;
  return chaos;
}

void write_outputs(const GridSpec& spec, const GridOutputs& out,
                   const std::string& prefix) {
  const std::string csv_path = prefix + ".csv";
  {
    std::ofstream csv(csv_path, std::ios::binary);
    if (!csv.good()) {
      throw CliError(kExitIo, "cannot write " + csv_path);
    }
    csv << out.evaluation_csv;
  }
  std::fprintf(stderr, "[shard_worker] wrote %s\n", csv_path.c_str());
  if (spec.telemetry) {
    const std::string prom_path = prefix + ".prom";
    std::ofstream prom(prom_path, std::ios::binary);
    if (!prom.good()) {
      throw CliError(kExitIo, "cannot write " + prom_path);
    }
    prom << out.merged_prometheus;
    std::fprintf(stderr, "[shard_worker] wrote %s\n", prom_path.c_str());
    if (out.job0_telemetry.has_value()) {
      for (const auto& path :
           dufp::telemetry::export_run(*out.job0_telemetry, prefix + ".job0")) {
        std::fprintf(stderr, "[shard_worker] wrote %s\n", path.c_str());
      }
    }
  }
}

/// fsync + atomic rename: the visible output file either has every
/// record its worker produced or does not exist at all.
void publish_output(const std::string& partial_path,
                    const std::string& out_path) {
  const int fd = ::open(partial_path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw CliError(kExitIo, "cannot reopen " + partial_path + ": " +
                                std::strerror(errno));
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    throw CliError(kExitIo, "fsync " + partial_path + ": " +
                                std::strerror(errno));
  }
  if (::rename(partial_path.c_str(), out_path.c_str()) != 0) {
    throw CliError(kExitIo, "rename " + partial_path + " -> " + out_path +
                                ": " + std::strerror(errno));
  }
}

int cmd_spec(const Args& args) {
  GridSpec spec = GridSpec::reference();
  if (const auto it = args.options.find("spec"); it != args.options.end()) {
    spec = GridSpec::load(it->second);
  }
  std::printf("%s\n", spec.canonical_text().c_str());
  std::fprintf(stderr, "[shard_worker] fingerprint %016llx\n",
               static_cast<unsigned long long>(spec.fingerprint()));
  return kExitOk;
}

int cmd_plan(const Args& args) {
  const GridSpec spec = load_spec(args);
  const auto gp = dufp::harness::build_plan(spec);
  std::printf("job,cell,repetition,seed\n");
  for (std::size_t i = 0; i < gp.plan.job_count(); ++i) {
    const auto job = gp.plan.job(i);
    std::printf("%zu,%zu,%d,%llu\n", i, job.cell, job.repetition,
                static_cast<unsigned long long>(gp.plan.job_config(i).seed));
  }
  std::fprintf(stderr, "[shard_worker] %zu jobs across %zu cells\n",
               gp.plan.job_count(), gp.plan.cell_count());
  return kExitOk;
}

int cmd_run(const Args& args) {
  const bool resume = args.options.count("resume") != 0;
  if (resume && args.options.count("spec") != 0) {
    // Both would be ambiguous unless they agree; demand agreement.
    const GridSpec flag_spec = load_spec(args);
    const RetryManifest m = RetryManifest::load(args.options.at("resume"));
    if (flag_spec.fingerprint() != m.spec.fingerprint()) {
      throw ShardFormatError(
          "run: --spec and --resume disagree (different fingerprints)");
    }
  }
  RetryManifest manifest;
  GridSpec spec;
  if (resume) {
    manifest = RetryManifest::load(args.options.at("resume"));
    spec = manifest.spec;
    std::fprintf(stderr, "[shard_worker] resume: %zu missing jobs\n",
                 manifest.missing.size());
  } else {
    spec = load_spec(args);
  }
  const std::string out_path = require_out(args);
  const std::string partial_path = out_path + ".partial";

  dufp::harness::ShardRunOptions options;
  options.shard = get_int(args, "shard", 0);
  options.shards = get_int(args, "shards", 1);
  options.threads = get_int(args, "threads", 1);
  options.chunk_size = get_int(args, "chunk-size", 0);
  options.chaos = chaos_from_env();
  options.chaos.worker = options.shard;
  options.chaos.attempt = get_int(args, "attempt", 0);
  if (resume) options.job_filter = &manifest.missing;

  std::unique_ptr<dufp::harness::FileChunkClaimer> claimer;
  if (options.chunk_size > 0) {
    const auto it = args.options.find("claim-dir");
    if (it == args.options.end()) {
      usage_error("--chunk-size needs --claim-dir");
    }
    dufp::harness::LeaseOptions lease;
    if (const auto o = args.options.find("owner"); o != args.options.end()) {
      lease.owner = o->second;
    }
    lease.ttl_seconds = get_double(args, "lease-ttl", 30.0);
    claimer = std::make_unique<dufp::harness::FileChunkClaimer>(it->second,
                                                                lease);
    options.claimer = claimer.get();
  }

  {
    std::ofstream out(partial_path, std::ios::binary);
    if (!out.good()) {
      throw CliError(kExitIo, "cannot write " + partial_path);
    }
    try {
      dufp::harness::run_shard(spec, options, out);
    } catch (const ShardFormatError&) {
      throw;  // -> kExitSpec
    } catch (const std::invalid_argument&) {
      throw;  // caller error -> internal/usage surface
    } catch (const std::exception& e) {
      throw CliError(kExitJob, strf("job execution failed: %s", e.what()));
    }
    if (!out.good()) {
      throw CliError(kExitIo, "short write to " + partial_path);
    }
  }
  publish_output(partial_path, out_path);
  std::fprintf(stderr, "[shard_worker] shard %d/%d done -> %s\n",
               options.shard, options.shards, out_path.c_str());
  return kExitOk;
}

int cmd_gather(const Args& args) {
  const GridSpec spec = load_spec(args);
  const std::string prefix = require_out(args);
  if (args.positional.empty()) {
    usage_error("gather needs at least one shard file");
  }
  GatherOptions gopts;
  gopts.partial = args.options.count("partial") != 0;
  auto report =
      dufp::harness::gather_shards_report(spec, args.positional, gopts);
  for (const auto& note : report.notes) {
    std::fprintf(stderr, "[shard_worker] salvage: %s:%d: %s\n",
                 note.file.c_str(), note.line, note.what.c_str());
  }
  if (report.duplicates != 0) {
    std::fprintf(stderr,
                 "[shard_worker] salvage: %zu idempotent duplicate record(s) "
                 "dropped\n",
                 report.duplicates);
  }
  if (!report.complete()) {
    const auto manifest = dufp::harness::make_retry_manifest(spec, report);
    const std::string manifest_path = prefix + ".retry.json";
    std::ofstream out(manifest_path, std::ios::binary);
    if (!out.good()) {
      throw CliError(kExitIo, "cannot write " + manifest_path);
    }
    out << manifest.canonical_text() << '\n';
    std::fprintf(stderr,
                 "[shard_worker] incomplete: %zu of %zu jobs missing; retry "
                 "manifest -> %s (run `dufp_shard_worker run --resume %s "
                 "--out FILE`, then gather again with that FILE added)\n",
                 report.missing.size(), report.job_count,
                 manifest_path.c_str(), manifest_path.c_str());
    return kExitIncomplete;
  }
  write_outputs(spec,
                dufp::harness::finalize_grid(spec, std::move(report.results)),
                prefix);
  return kExitOk;
}

int cmd_serial(const Args& args) {
  const GridSpec spec = load_spec(args);
  const std::string prefix = require_out(args);
  const int threads = get_int(args, "threads", 1);
  write_outputs(spec, dufp::harness::run_grid_serial(spec, threads), prefix);
  return kExitOk;
}

int cmd_supervise(const Args& args) {
  const GridSpec spec = load_spec(args);
  const auto it = args.options.find("out-dir");
  if (it == args.options.end()) usage_error("--out-dir DIR is required");

  dufp::harness::SupervisorOptions options;
  options.out_dir = it->second;
  options.workers = get_int(args, "workers", 2);
  options.threads = get_int(args, "threads", 1);
  options.chunk_size = get_int(args, "chunk-size", 1);
  options.lease_ttl_seconds = get_double(args, "lease-ttl", 30.0);
  options.max_restarts = get_int(args, "max-restarts", 2);
  options.worker_deadline_seconds = get_double(args, "deadline", 0.0);
  options.chaos = chaos_from_env();
  options.quiet = std::getenv("DUFP_QUIET") != nullptr;

  const auto report = dufp::harness::supervise_shard_run(spec, options);
  std::fprintf(stderr,
               "[shard_worker] supervise: %zu attempt(s), %d restart(s), %d "
               "deadline kill(s), %d lease(s) reap-released, %zu poisoned "
               "chunk(s), chunks %s\n",
               report.attempts.size(), report.restarts, report.deadline_kills,
               report.leases_released, report.poisoned_chunks.size(),
               report.all_chunks_done ? "all done" : "INCOMPLETE");
  for (const auto& f : report.output_files) {
    std::printf("%s\n", f.c_str());  // machine-consumable: gather input set
  }
  if (report.fatal) {
    throw ShardFormatError(
        "supervise: a worker hit a non-retryable configuration error");
  }
  if (const auto g = args.options.find("gather"); g != args.options.end()) {
    GatherOptions gopts;
    gopts.partial = true;
    auto gathered =
        dufp::harness::gather_shards_report(spec, report.output_files, gopts);
    if (!gathered.complete()) {
      const auto manifest =
          dufp::harness::make_retry_manifest(spec, gathered);
      const std::string manifest_path = g->second + ".retry.json";
      std::ofstream out(manifest_path, std::ios::binary);
      if (!out.good()) {
        throw CliError(kExitIo, "cannot write " + manifest_path);
      }
      out << manifest.canonical_text() << '\n';
      std::fprintf(stderr,
                   "[shard_worker] supervise: %zu job(s) unrecovered; retry "
                   "manifest -> %s\n",
                   gathered.missing.size(), manifest_path.c_str());
      return kExitIncomplete;
    }
    write_outputs(
        spec, dufp::harness::finalize_grid(spec, std::move(gathered.results)),
        g->second);
    return kExitOk;
  }
  return report.all_chunks_done ? kExitOk : kExitIncomplete;
}

// -- fleet subcommands -------------------------------------------------------

using dufp::fleet::FleetOutputs;
using dufp::fleet::FleetRetryManifest;
using dufp::fleet::FleetSpec;

FleetSpec load_fleet_spec(const Args& args) {
  const auto it = args.options.find("spec");
  if (it == args.options.end()) usage_error("--spec FILE is required");
  return FleetSpec::load(it->second);
}

void write_fleet_outputs(const FleetOutputs& out, const std::string& prefix) {
  const std::vector<std::pair<std::string, const std::string*>> files = {
      {prefix + ".alloc.csv", &out.allocation_csv},
      {prefix + ".summary.csv", &out.summary_csv},
      {prefix + ".prom", &out.prometheus},
  };
  for (const auto& [path, text] : files) {
    std::ofstream f(path, std::ios::binary);
    if (!f.good()) {
      throw CliError(kExitIo, "cannot write " + path);
    }
    f << *text;
    std::fprintf(stderr, "[shard_worker] wrote %s\n", path.c_str());
  }
}

int cmd_fleet_spec(const Args& args) {
  FleetSpec spec = FleetSpec::reference();
  if (const auto it = args.options.find("spec"); it != args.options.end()) {
    spec = FleetSpec::load(it->second);
  }
  std::printf("%s\n", spec.canonical_text().c_str());
  std::fprintf(stderr, "[shard_worker] fingerprint %016llx\n",
               static_cast<unsigned long long>(spec.fingerprint()));
  return kExitOk;
}

int cmd_fleet_run(const Args& args) {
  const bool resume = args.options.count("resume") != 0;
  if (resume && args.options.count("spec") != 0) {
    const FleetSpec flag_spec = load_fleet_spec(args);
    const FleetRetryManifest m =
        FleetRetryManifest::load(args.options.at("resume"));
    if (flag_spec.fingerprint() != m.spec.fingerprint()) {
      throw ShardFormatError(
          "fleet-run: --spec and --resume disagree (different fingerprints)");
    }
  }
  FleetRetryManifest manifest;
  FleetSpec spec;
  if (resume) {
    manifest = FleetRetryManifest::load(args.options.at("resume"));
    spec = manifest.spec;
    std::fprintf(stderr, "[shard_worker] resume: %zu missing node(s)\n",
                 manifest.missing.size());
  } else {
    spec = load_fleet_spec(args);
  }
  const std::string out_path = require_out(args);
  const std::string partial_path = out_path + ".partial";

  dufp::harness::ShardRunOptions options;
  options.shard = get_int(args, "shard", 0);
  options.shards = get_int(args, "shards", 1);
  options.chunk_size = get_int(args, "chunk-size", 0);
  options.chaos = chaos_from_env();
  options.chaos.worker = options.shard;
  options.chaos.attempt = get_int(args, "attempt", 0);
  if (resume) options.job_filter = &manifest.missing;

  std::unique_ptr<dufp::harness::FileChunkClaimer> claimer;
  if (options.chunk_size > 0) {
    const auto it = args.options.find("claim-dir");
    if (it == args.options.end()) {
      usage_error("--chunk-size needs --claim-dir");
    }
    dufp::harness::LeaseOptions lease;
    if (const auto o = args.options.find("owner"); o != args.options.end()) {
      lease.owner = o->second;
    }
    lease.ttl_seconds = get_double(args, "lease-ttl", 30.0);
    claimer = std::make_unique<dufp::harness::FileChunkClaimer>(it->second,
                                                                lease);
    options.claimer = claimer.get();
  }

  {
    std::ofstream out(partial_path, std::ios::binary);
    if (!out.good()) {
      throw CliError(kExitIo, "cannot write " + partial_path);
    }
    try {
      dufp::fleet::run_fleet_shard(spec, options, out);
    } catch (const ShardFormatError&) {
      throw;  // -> kExitSpec
    } catch (const std::invalid_argument&) {
      throw;  // caller error -> internal/usage surface
    } catch (const std::exception& e) {
      throw CliError(kExitJob, strf("node execution failed: %s", e.what()));
    }
    if (!out.good()) {
      throw CliError(kExitIo, "short write to " + partial_path);
    }
  }
  publish_output(partial_path, out_path);
  std::fprintf(stderr, "[shard_worker] fleet shard %d/%d done -> %s\n",
               options.shard, options.shards, out_path.c_str());
  return kExitOk;
}

int cmd_fleet_gather(const Args& args) {
  const FleetSpec spec = load_fleet_spec(args);
  const std::string prefix = require_out(args);
  if (args.positional.empty()) {
    usage_error("fleet-gather needs at least one shard file");
  }
  GatherOptions gopts;
  gopts.partial = args.options.count("partial") != 0;
  auto report =
      dufp::fleet::gather_fleet_report(spec, args.positional, gopts);
  for (const auto& note : report.notes) {
    std::fprintf(stderr, "[shard_worker] salvage: %s:%d: %s\n",
                 note.file.c_str(), note.line, note.what.c_str());
  }
  if (report.duplicates != 0) {
    std::fprintf(stderr,
                 "[shard_worker] salvage: %zu idempotent duplicate record(s) "
                 "dropped\n",
                 report.duplicates);
  }
  if (!report.complete()) {
    const auto manifest =
        dufp::fleet::make_fleet_retry_manifest(spec, report);
    const std::string manifest_path = prefix + ".retry.json";
    std::ofstream out(manifest_path, std::ios::binary);
    if (!out.good()) {
      throw CliError(kExitIo, "cannot write " + manifest_path);
    }
    out << manifest.canonical_text() << '\n';
    std::fprintf(stderr,
                 "[shard_worker] incomplete: %zu of %zu node(s) missing; "
                 "retry manifest -> %s (run `dufp_shard_worker fleet-run "
                 "--resume %s --out FILE`, then fleet-gather again with that "
                 "FILE added)\n",
                 report.missing.size(), report.job_count,
                 manifest_path.c_str(), manifest_path.c_str());
    return kExitIncomplete;
  }
  write_fleet_outputs(dufp::fleet::finalize_fleet(spec, report.results),
                      prefix);
  return kExitOk;
}

int cmd_fleet_serial(const Args& args) {
  const FleetSpec spec = load_fleet_spec(args);
  const std::string prefix = require_out(args);
  write_fleet_outputs(dufp::fleet::run_fleet_serial(spec), prefix);
  return kExitOk;
}

int cmd_fleet_supervise(const Args& args) {
  const FleetSpec spec = load_fleet_spec(args);
  const auto it = args.options.find("out-dir");
  if (it == args.options.end()) usage_error("--out-dir DIR is required");

  dufp::harness::SupervisorOptions options;
  options.out_dir = it->second;
  options.workers = get_int(args, "workers", 2);
  options.chunk_size = get_int(args, "chunk-size", 1);
  options.lease_ttl_seconds = get_double(args, "lease-ttl", 30.0);
  options.max_restarts = get_int(args, "max-restarts", 2);
  options.worker_deadline_seconds = get_double(args, "deadline", 0.0);
  options.chaos = chaos_from_env();
  options.quiet = std::getenv("DUFP_QUIET") != nullptr;

  const auto report = dufp::fleet::supervise_fleet_run(spec, options);
  std::fprintf(stderr,
               "[shard_worker] fleet-supervise: %zu attempt(s), %d "
               "restart(s), %d deadline kill(s), %d lease(s) reap-released, "
               "%zu poisoned chunk(s), chunks %s\n",
               report.attempts.size(), report.restarts, report.deadline_kills,
               report.leases_released, report.poisoned_chunks.size(),
               report.all_chunks_done ? "all done" : "INCOMPLETE");
  for (const auto& f : report.output_files) {
    std::printf("%s\n", f.c_str());  // machine-consumable: gather input set
  }
  if (report.fatal) {
    throw ShardFormatError(
        "fleet-supervise: a worker hit a non-retryable configuration error");
  }
  if (const auto g = args.options.find("gather"); g != args.options.end()) {
    GatherOptions gopts;
    gopts.partial = true;
    auto gathered =
        dufp::fleet::gather_fleet_report(spec, report.output_files, gopts);
    if (!gathered.complete()) {
      const auto manifest =
          dufp::fleet::make_fleet_retry_manifest(spec, gathered);
      const std::string manifest_path = g->second + ".retry.json";
      std::ofstream out(manifest_path, std::ios::binary);
      if (!out.good()) {
        throw CliError(kExitIo, "cannot write " + manifest_path);
      }
      out << manifest.canonical_text() << '\n';
      std::fprintf(stderr,
                   "[shard_worker] fleet-supervise: %zu node(s) unrecovered; "
                   "retry manifest -> %s\n",
                   gathered.missing.size(), manifest_path.c_str());
      return kExitIncomplete;
    }
    write_fleet_outputs(dufp::fleet::finalize_fleet(spec, gathered.results),
                        g->second);
    return kExitOk;
  }
  return report.all_chunks_done ? kExitOk : kExitIncomplete;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_error("missing subcommand");
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (cmd == "spec") return cmd_spec(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "gather") return cmd_gather(args);
    if (cmd == "serial") return cmd_serial(args);
    if (cmd == "supervise") return cmd_supervise(args);
    if (cmd == "fleet-spec") return cmd_fleet_spec(args);
    if (cmd == "fleet-run") return cmd_fleet_run(args);
    if (cmd == "fleet-gather") return cmd_fleet_gather(args);
    if (cmd == "fleet-serial") return cmd_fleet_serial(args);
    if (cmd == "fleet-supervise") return cmd_fleet_supervise(args);
  } catch (const CliError& e) {
    std::fprintf(stderr, "dufp_shard_worker: %s\n", e.what());
    return e.code;
  } catch (const ShardFormatError& e) {
    std::fprintf(stderr, "dufp_shard_worker: %s\n", e.what());
    return kExitSpec;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dufp_shard_worker: %s\n", e.what());
    return kExitInternal;
  }
  usage_error("unknown subcommand '" + cmd + "'");
}
