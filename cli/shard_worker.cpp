// dufp_shard_worker — one process of a sharded experiment-grid run.
//
// Subcommands (see tools/shard_run.sh for the orchestrated flow and
// DESIGN.md § Sharded execution for the contract):
//
//   spec   [--reference | --spec FILE]
//          Print the canonical spec JSON (+ fingerprint to stderr).
//          `--reference` (default) emits the built-in reference grid —
//          the starting point for writing custom specs.
//
//   plan   --spec FILE
//          Print the job table (job, cell, repetition, label, seed) the
//          spec enumerates — identical in every process, which is what
//          makes job indices portable shard identities.
//
//   run    --spec FILE --out FILE [--shard K --shards N] [--threads T]
//          [--chunk-size C --claim-dir DIR]
//          Execute this worker's share of the jobs and stream the
//          versioned JSONL to --out.  Default is static round-robin;
//          --chunk-size switches to dynamic chunk claiming through
//          O_CREAT|O_EXCL claim files in --claim-dir.
//
//   gather --spec FILE --out PREFIX FILES...
//          Merge shard JSONL files: validates headers/fingerprints,
//          demands every job exactly once, aggregates bit-identically
//          to a serial run, and writes PREFIX.csv (+ PREFIX.prom /
//          telemetry exports when the spec has telemetry on).
//
//   serial --spec FILE --out PREFIX [--threads T]
//          Run the whole grid in this process and write the same
//          outputs — the byte-identical reference for `gather`.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "harness/shard.h"
#include "telemetry/export.h"

namespace {

using dufp::strf;
using dufp::harness::GridOutputs;
using dufp::harness::GridSpec;

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "dufp_shard_worker: %s\n", what.c_str());
  std::fprintf(stderr,
               "usage: dufp_shard_worker spec [--reference|--spec FILE]\n"
               "       dufp_shard_worker plan --spec FILE\n"
               "       dufp_shard_worker run --spec FILE --out FILE"
               " [--shard K --shards N] [--threads T]"
               " [--chunk-size C --claim-dir DIR]\n"
               "       dufp_shard_worker gather --spec FILE --out PREFIX"
               " FILES...\n"
               "       dufp_shard_worker serial --spec FILE --out PREFIX"
               " [--threads T]\n");
  std::exit(2);
}

struct Args {
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (key == "reference") {
        args.options[key] = "1";
        continue;
      }
      if (i + 1 >= argc) usage_error("missing value for --" + key);
      args.options[key] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int get_int(const Args& args, const std::string& key, int fallback) {
  const auto it = args.options.find(key);
  if (it == args.options.end()) return fallback;
  try {
    return std::stoi(it->second);
  } catch (const std::exception&) {
    usage_error("--" + key + " wants an integer, got '" + it->second + "'");
  }
}

GridSpec load_spec(const Args& args) {
  const auto it = args.options.find("spec");
  if (it == args.options.end()) usage_error("--spec FILE is required");
  return GridSpec::load(it->second);
}

std::string require_out(const Args& args) {
  const auto it = args.options.find("out");
  if (it == args.options.end()) usage_error("--out is required");
  return it->second;
}

void write_outputs(const GridSpec& spec, const GridOutputs& out,
                   const std::string& prefix) {
  const std::string csv_path = prefix + ".csv";
  {
    std::ofstream csv(csv_path, std::ios::binary);
    if (!csv.good()) {
      throw std::runtime_error("cannot write " + csv_path);
    }
    csv << out.evaluation_csv;
  }
  std::fprintf(stderr, "[shard_worker] wrote %s\n", csv_path.c_str());
  if (spec.telemetry) {
    const std::string prom_path = prefix + ".prom";
    std::ofstream prom(prom_path, std::ios::binary);
    if (!prom.good()) {
      throw std::runtime_error("cannot write " + prom_path);
    }
    prom << out.merged_prometheus;
    std::fprintf(stderr, "[shard_worker] wrote %s\n", prom_path.c_str());
    if (out.job0_telemetry.has_value()) {
      for (const auto& path :
           dufp::telemetry::export_run(*out.job0_telemetry, prefix + ".job0")) {
        std::fprintf(stderr, "[shard_worker] wrote %s\n", path.c_str());
      }
    }
  }
}

int cmd_spec(const Args& args) {
  GridSpec spec = GridSpec::reference();
  if (const auto it = args.options.find("spec"); it != args.options.end()) {
    spec = GridSpec::load(it->second);
  }
  std::printf("%s\n", spec.canonical_text().c_str());
  std::fprintf(stderr, "[shard_worker] fingerprint %016llx\n",
               static_cast<unsigned long long>(spec.fingerprint()));
  return 0;
}

int cmd_plan(const Args& args) {
  const GridSpec spec = load_spec(args);
  const auto gp = dufp::harness::build_plan(spec);
  std::printf("job,cell,repetition,seed\n");
  for (std::size_t i = 0; i < gp.plan.job_count(); ++i) {
    const auto job = gp.plan.job(i);
    std::printf("%zu,%zu,%d,%llu\n", i, job.cell, job.repetition,
                static_cast<unsigned long long>(gp.plan.job_config(i).seed));
  }
  std::fprintf(stderr, "[shard_worker] %zu jobs across %zu cells\n",
               gp.plan.job_count(), gp.plan.cell_count());
  return 0;
}

int cmd_run(const Args& args) {
  const GridSpec spec = load_spec(args);
  const std::string out_path = require_out(args);

  dufp::harness::ShardRunOptions options;
  options.shard = get_int(args, "shard", 0);
  options.shards = get_int(args, "shards", 1);
  options.threads = get_int(args, "threads", 1);
  options.chunk_size = get_int(args, "chunk-size", 0);

  std::unique_ptr<dufp::harness::FileChunkClaimer> claimer;
  if (options.chunk_size > 0) {
    const auto it = args.options.find("claim-dir");
    if (it == args.options.end()) {
      usage_error("--chunk-size needs --claim-dir");
    }
    claimer = std::make_unique<dufp::harness::FileChunkClaimer>(it->second);
    options.claimer = claimer.get();
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out.good()) {
    throw std::runtime_error("cannot write " + out_path);
  }
  dufp::harness::run_shard(spec, options, out);
  std::fprintf(stderr, "[shard_worker] shard %d/%d done -> %s\n",
               options.shard, options.shards, out_path.c_str());
  return 0;
}

int cmd_gather(const Args& args) {
  const GridSpec spec = load_spec(args);
  const std::string prefix = require_out(args);
  if (args.positional.empty()) {
    usage_error("gather needs at least one shard file");
  }
  auto results = dufp::harness::gather_shards(spec, args.positional);
  write_outputs(spec, dufp::harness::finalize_grid(spec, std::move(results)),
                prefix);
  return 0;
}

int cmd_serial(const Args& args) {
  const GridSpec spec = load_spec(args);
  const std::string prefix = require_out(args);
  const int threads = get_int(args, "threads", 1);
  write_outputs(spec, dufp::harness::run_grid_serial(spec, threads), prefix);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_error("missing subcommand");
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (cmd == "spec") return cmd_spec(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "gather") return cmd_gather(args);
    if (cmd == "serial") return cmd_serial(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dufp_shard_worker: %s\n", e.what());
    return 1;
  }
  usage_error("unknown subcommand '" + cmd + "'");
}
