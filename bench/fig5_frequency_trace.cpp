// Fig. 5: measured core frequency for CG at 10 % tolerated slowdown, DUF
// vs DUFP.  With uncore scaling alone the core clock sits at the 2.8 GHz
// all-core maximum for most of the run; adding dynamic capping pulls the
// average down to ~2.5 GHz — the mechanism behind DUFP's extra power
// savings (Sec. V-E).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/trace.h"

using namespace dufp;
using harness::PolicyMode;

namespace {

struct TraceSummary {
  RunningStats freq_ghz;
  double fraction_at_max = 0.0;
};

TraceSummary run_with_trace(PolicyMode mode, const std::string& csv_path) {
  const auto& cg = workloads::profile(workloads::AppId::cg);
  harness::RunConfig cfg = harness::default_run_config(cg);
  cfg.seed = 105;
  cfg.mode = mode;
  cfg.tolerated_slowdown = 0.10;

  sim::VectorTraceSink sink(/*decimation=*/10);  // 10 ms resolution
  cfg.trace = &sink;
  harness::run_once(cfg);

  // Persist the (core 0) trace for plotting.
  CsvWriter csv(csv_path);
  csv.write_row({"time_s", "core_mhz", "uncore_mhz", "cap_long_w",
                 "pkg_power_w"});
  TraceSummary out;
  long at_max = 0;
  for (const auto& e : sink.entries()) {
    const auto& r = e.sockets[0];
    csv.write_row({fmt_double(e.time.seconds(), 3), fmt_double(r.core_mhz, 0),
                   fmt_double(r.uncore_mhz, 0), fmt_double(r.cap_long_w, 1),
                   fmt_double(r.pkg_power_w, 2)});
    out.freq_ghz.add(r.core_mhz / 1000.0);
    if (r.core_mhz >= 2800.0f - 1.0f) ++at_max;
  }
  out.fraction_at_max =
      static_cast<double>(at_max) / static_cast<double>(sink.entries().size());
  return out;
}

}  // namespace

int main() {
  bench::print_banner(
      "Fig. 5: core frequency behaviour, CG @ 10 % tolerated slowdown",
      "Fig. 5 (Sec. V-E)");

  harness::note_progress("DUF trace");
  const auto duf =
      run_with_trace(PolicyMode::duf, bench::out_path("fig5_duf_trace.csv"));
  harness::note_progress("DUFP trace");
  const auto dufp =
      run_with_trace(PolicyMode::dufp, bench::out_path("fig5_dufp_trace.csv"));

  TextTable t({"configuration", "avg frequency (GHz)", "min (GHz)",
               "time at 2.8 GHz max (%)"});
  t.add_row({"DUF", fmt_double(duf.freq_ghz.mean(), 2),
             fmt_double(duf.freq_ghz.min(), 2),
             fmt_double(duf.fraction_at_max * 100.0, 1)});
  t.add_row({"DUFP", fmt_double(dufp.freq_ghz.mean(), 2),
             fmt_double(dufp.freq_ghz.min(), 2),
             fmt_double(dufp.fraction_at_max * 100.0, 1)});
  t.print(std::cout);

  std::printf(
      "\nPaper: with DUF the frequency is at the 2.8 GHz all-core maximum\n"
      "for the majority of the execution; with DUFP the average observed\n"
      "frequency drops to ~2.5 GHz.\n");
  std::printf(
      "Traces written to %s / %s (10 ms resolution, socket 0).\n",
      bench::out_path("fig5_duf_trace.csv").c_str(),
      bench::out_path("fig5_dufp_trace.csv").c_str());
  return 0;
}
