// Ablation: measurement / control interval.
//
// The paper fixes 200 ms as the trade-off between controller overhead and
// reaction latency (Sec. IV-D) and attributes the UA and LAMMPS tolerance
// violations to variations the 200 ms sampler misses (Sec. V-A).  This
// sweep quantifies that trade-off: shorter intervals catch UA's compute
// iterations and LAMMPS' bursts sooner (smaller violations) but force
// more actuator churn; longer intervals forfeit savings and overshoot.
#include <iostream>

#include "bench_util.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner("Ablation: control interval (paper default 200 ms)",
                      "Sec. IV-D / V-A discussion");
  const int reps = harness::BenchOptions::from_env().repetitions;

  for (auto app : {workloads::AppId::ua, workloads::AppId::lammps,
                   workloads::AppId::cg}) {
    std::printf("\n--- %s, DUFP @ 10 %% tolerated slowdown ---\n",
                workloads::app_name(app).c_str());
    TextTable t({"interval (ms)", "slowdown %", "power savings %",
                 "energy change %", "actuations / s"});
    harness::RunConfig base =
        harness::default_run_config(workloads::profile(app));
    base.seed = 301;
    const auto def = harness::run_repeated(base, reps);

    for (long ms : {50L, 100L, 200L, 400L}) {
      harness::note_progress(workloads::app_name(app) + " @ " +
                             std::to_string(ms) + " ms");
      harness::RunConfig cfg = base;
      cfg.mode = PolicyMode::dufp;
      cfg.tolerated_slowdown = 0.10;
      cfg.policy.interval = SimTime::from_millis(ms);
      const auto res = harness::run_once(cfg);
      const auto agg = harness::run_repeated(cfg, reps);

      double actions = 0.0;
      for (const auto& st : res.agent_stats) {
        actions += static_cast<double>(
            st.cap_decreases + st.cap_increases + st.cap_resets +
            st.uncore_decreases + st.uncore_increases + st.uncore_resets);
      }
      actions /= res.summary.exec_seconds;

      t.add_row(std::to_string(ms),
                {harness::percent_over(agg.exec_seconds.mean,
                                       def.exec_seconds.mean),
                 -harness::percent_over(agg.avg_pkg_power_w.mean,
                                        def.avg_pkg_power_w.mean),
                 harness::percent_over(agg.total_energy_j.mean,
                                       def.total_energy_j.mean),
                 actions});
    }
    t.print(std::cout);
  }

  std::printf(
      "\nExpected shape: 50 ms reacts fastest (best tolerance compliance\n"
      "on UA/LAMMPS) at the cost of several times more actuator writes;\n"
      "400 ms leaves savings on the table and misses phase changes.\n");
  return 0;
}
