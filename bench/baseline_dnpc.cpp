// Baseline comparison: DUFP vs a DNPC-style frequency-model capper
// (Sec. VI related work).
//
// The paper could not run DNPC on its platform but argues its linear
// frequency-performance model breaks on memory-intensive and vectorized
// applications.  This bench quantifies the argument: on memory-bound
// codes DNPC returns headroom as soon as the clock dips (predicting
// slowdown that never happens), while DUFP's FLOPS feedback keeps it.
#include <iostream>

#include "bench_util.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner("Baseline: DNPC-style frequency-model capping vs DUFP",
                      "Sec. VI related-work discussion");
  const int reps = harness::BenchOptions::from_env().repetitions;

  TextTable t({"app", "DNPC slowdown %", "DNPC savings %",
               "DUFP slowdown %", "DUFP savings %"});
  for (auto app : workloads::all_apps()) {
    harness::note_progress(workloads::app_name(app));
    harness::RunConfig base =
        harness::default_run_config(workloads::profile(app));
    base.seed = 305;
    const auto def = harness::run_repeated(base, reps);

    auto cell = [&](PolicyMode mode) {
      harness::RunConfig cfg = base;
      cfg.mode = mode;
      cfg.tolerated_slowdown = 0.10;
      return harness::run_repeated(cfg, reps);
    };
    const auto dnpc = cell(PolicyMode::dnpc);
    const auto dufp = cell(PolicyMode::dufp);

    t.add_row(workloads::app_name(app),
              {harness::percent_over(dnpc.exec_seconds.mean,
                                     def.exec_seconds.mean),
               -harness::percent_over(dnpc.avg_pkg_power_w.mean,
                                      def.avg_pkg_power_w.mean),
               harness::percent_over(dufp.exec_seconds.mean,
                                     def.exec_seconds.mean),
               -harness::percent_over(dufp.avg_pkg_power_w.mean,
                                      def.avg_pkg_power_w.mean)});
  }
  t.print(std::cout);

  std::printf(
      "\nExpected shape (10 %% tolerated slowdown): the frequency model\n"
      "cuts both ways.  On memory-bound codes (CG, MG) DNPC forfeits\n"
      "savings DUFP takes — it predicts slowdown from the clock dip and\n"
      "backs off although throughput is fine.  On EP it has no uncore\n"
      "lever at all (10 %% vs DUFP's ~18 %%), and on bursty codes\n"
      "(LAMMPS) its estimate lags and the limit is overrun.  Where FLOPS\n"
      "fluctuate without real slowdown (BT), frequency-blindness lets\n"
      "DNPC cap deeper than DUFP's conservative FLOPS feedback.\n");
  return 0;
}
