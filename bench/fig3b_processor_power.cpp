// Fig. 3b: impact on processor power consumption — savings (% below the
// default run's average package power) per application and tolerance,
// DUF vs DUFP.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner(
      "Fig. 3b: impact on processor power consumption (savings %)",
      "Fig. 3b (Sec. V-B)");
  const auto evals = bench::run_full_grid();
  const auto& tols = harness::paper_tolerances();

  for (PolicyMode mode : {PolicyMode::duf, PolicyMode::dufp}) {
    std::printf("\n--- %s: processor power savings %% ---\n",
                harness::policy_mode_name(mode).c_str());
    std::vector<std::string> header{"app"};
    for (double t : tols) header.push_back(bench::tol_label(t));
    TextTable table(header);
    for (const auto& e : evals) {
      std::vector<double> row;
      for (double t : tols) row.push_back(e.pkg_power_savings_pct(mode, t));
      table.add_row(workloads::app_name(e.app()), row);
    }
    table.print(std::cout);
  }

  // Headline extractions matching the prose of Sec. V-B.
  double best = -1e9;
  std::string best_cfg;
  double best_gap = -1e9;
  std::string gap_cfg;
  for (const auto& e : evals) {
    for (double t : tols) {
      const double dufp = e.pkg_power_savings_pct(PolicyMode::dufp, t);
      const double duf = e.pkg_power_savings_pct(PolicyMode::duf, t);
      if (dufp > best) {
        best = dufp;
        best_cfg =
            workloads::app_name(e.app()) + " @ " + bench::tol_label(t);
      }
      if (dufp - duf > best_gap) {
        best_gap = dufp - duf;
        gap_cfg = workloads::app_name(e.app()) + " @ " + bench::tol_label(t);
      }
    }
  }
  std::printf("\nBest DUFP savings: %.2f %% (%s).   [paper: 24.27 %% on EP]\n",
              best, best_cfg.c_str());
  std::printf(
      "Largest DUFP-over-DUF improvement: %.2f points (%s).   "
      "[paper: +7.90 points on CG @20%%]\n", best_gap, gap_cfg.c_str());

  bench::write_grid_csv(
      "fig3b_processor_power.csv", {"power_savings_pct"}, evals,
      [](const harness::Evaluation& e, PolicyMode mode, double t) {
        return std::vector<std::string>{
            fmt_double(e.pkg_power_savings_pct(mode, t), 3)};
      });
  return 0;
}
