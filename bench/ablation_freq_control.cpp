// Extension study: DUFP-F — direct core-frequency management under power
// capping (the paper's Sec. VII future work: "better handling CPU
// frequency under power capping, instead of relying on power capping to
// change the CPU frequency").
//
// DUFP-F behaves like DUFP but, whenever the cap is active and the
// controller steady, pins the core clock via IA32_PERF_CTL one P-state
// above the observed equilibrium.  RAPL then stops hunting around the
// cap, trading a sliver of burst performance for steadier power.
#include <iostream>

#include "bench_util.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner(
      "Extension: DUFP-F (direct frequency management under capping)",
      "Sec. VII future work");
  const int reps = harness::BenchOptions::from_env().repetitions;

  for (auto app : {workloads::AppId::cg, workloads::AppId::hpl,
                   workloads::AppId::lammps}) {
    std::printf("\n--- %s @ 10 %% tolerated slowdown ---\n",
                workloads::app_name(app).c_str());
    harness::RunConfig base =
        harness::default_run_config(workloads::profile(app));
    base.seed = 304;
    const auto def = harness::run_repeated(base, reps);

    TextTable t({"configuration", "slowdown %", "power savings %",
                 "energy change %", "p-state pins / min"});
    for (PolicyMode mode : {PolicyMode::dufp, PolicyMode::dufpf}) {
      harness::note_progress(workloads::app_name(app) + " " +
                             harness::policy_mode_name(mode));
      harness::RunConfig cfg = base;
      cfg.mode = mode;
      cfg.tolerated_slowdown = 0.10;
      const auto res = harness::run_once(cfg);
      const auto agg = harness::run_repeated(cfg, reps);
      double pins = 0.0;
      for (const auto& st : res.agent_stats) {
        pins += static_cast<double>(st.pstate_pins);
      }
      pins = pins / res.summary.exec_seconds * 60.0;
      t.add_row(harness::policy_mode_name(mode),
                {harness::percent_over(agg.exec_seconds.mean,
                                       def.exec_seconds.mean),
                 -harness::percent_over(agg.avg_pkg_power_w.mean,
                                        def.avg_pkg_power_w.mean),
                 harness::percent_over(agg.total_energy_j.mean,
                                       def.total_energy_j.mean),
                 pins});
    }
    t.print(std::cout);
  }

  std::printf(
      "\nExpected shape: DUFP-F matches DUFP's savings with equal or\n"
      "slightly lower power (no RAPL hunting above the equilibrium) and\n"
      "no additional slowdown.\n");
  return 0;
}
