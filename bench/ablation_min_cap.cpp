// Ablation: minimum power cap (paper default 65 W).
//
// Sec. IV-A: "only highly memory intensive applications can sustain low
// power caps ... lower power cap values have an impact on memory
// bandwidth".  This sweep shows why 65 W: below it, the memory-level
// parallelism lost to deep core throttling cuts achieved bandwidth and
// the slowdown of memory-bound applications escapes the tolerance.
#include <iostream>

#include "bench_util.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner("Ablation: minimum power cap (paper default 65 W)",
                      "Sec. IV-A discussion");
  const int reps = harness::BenchOptions::from_env().repetitions;

  for (auto app : {workloads::AppId::cg, workloads::AppId::ft}) {
    std::printf("\n--- %s, DUFP @ 10 %% tolerated slowdown ---\n",
                workloads::app_name(app).c_str());
    harness::RunConfig base =
        harness::default_run_config(workloads::profile(app));
    base.seed = 302;
    const auto def = harness::run_repeated(base, reps);

    TextTable t({"min cap (W)", "slowdown %", "power savings %",
                 "DRAM power savings %", "energy change %"});
    for (double min_cap : {45.0, 55.0, 65.0, 75.0, 85.0}) {
      harness::note_progress(workloads::app_name(app) + " min cap " +
                             fmt_double(min_cap, 0));
      harness::RunConfig cfg = base;
      cfg.mode = PolicyMode::dufp;
      cfg.tolerated_slowdown = 0.10;
      cfg.policy.min_cap_w = min_cap;
      const auto agg = harness::run_repeated(cfg, reps);
      t.add_row(fmt_double(min_cap, 0),
                {harness::percent_over(agg.exec_seconds.mean,
                                       def.exec_seconds.mean),
                 -harness::percent_over(agg.avg_pkg_power_w.mean,
                                        def.avg_pkg_power_w.mean),
                 -harness::percent_over(agg.avg_dram_power_w.mean,
                                        def.avg_dram_power_w.mean),
                 harness::percent_over(agg.total_energy_j.mean,
                                       def.total_energy_j.mean)});
    }
    t.print(std::cout);
  }

  std::printf(
      "\nExpected shape: marginal extra savings below 65 W, bought with\n"
      "growing bandwidth-driven slowdown on memory-intensive phases.\n");
  return 0;
}
