// Fig. 1c: total execution time under partial capping of CG's prologue.
//
// Companion to Fig. 1b: capping the memory-intensive first phase — even
// to 100 W — must not change CG's overall execution time, which is the
// paper's argument that phase-aware dynamic capping is free on
// memory-bound phases (Sec. II-A).
#include <iostream>

#include "bench_util.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner(
      "Fig. 1c: total execution time with partial power capping",
      "Fig. 1c (Sec. II-A)");

  const auto& cg = workloads::profile(workloads::AppId::cg);
  const int reps = harness::BenchOptions::from_env().repetitions;

  harness::RunConfig base = harness::default_run_config(cg);
  base.seed = 103;

  struct Config {
    const char* label;
    std::optional<double> cap;
  };
  const Config configs[] = {
      {"default", std::nullopt},
      {"phase cap 110 W on init", 110.0},
      {"phase cap 100 W on init", 100.0},
  };

  std::optional<harness::RepeatedResult> def;
  TextTable t({"configuration", "exec time (s)", "time ratio",
               "overhead %"});
  for (const auto& c : configs) {
    harness::note_progress(c.label);
    harness::RunConfig cfg = base;
    if (c.cap.has_value()) {
      cfg.phase_cap = harness::PhaseCapSpec{"init", *c.cap};
    }
    const auto r = harness::run_repeated(cfg, reps);
    if (!def) def = r;
    const double ratio = r.exec_seconds.mean / def->exec_seconds.mean;
    t.add_row({c.label, fmt_double(r.exec_seconds.mean, 3),
               fmt_double(ratio, 4),
               fmt_double((ratio - 1.0) * 100.0, 2)});
  }
  t.print(std::cout);

  std::printf(
      "\nPaper's observation: reducing the power budget of the first\n"
      "phase does not impact the overall execution time at all.\n");
  return 0;
}
