// Multi-process scaling of the sharded experiment engine on the
// reference grid: the same GridSpec run as 1 in-process serial execution
// and as N forked shard workers + gather, reporting wall-clock per
// variant and verifying the gathered output bytes match serial exactly.
//
// Forking happens BEFORE any thread pool exists (every run here uses
// threads=1), so the children are plain single-threaded processes — the
// same shape tools/shard_run.sh launches, minus the exec.
//
// On a single-CPU host the N-process rows time-slice one core and
// measure sharding overhead (serialization, gather, process startup),
// not a speedup — the rows still run (the byte-identity verdict is
// meaningful on any host) but publish {"skipped_reason": "host_cpus==1"}
// in place of speedup_vs_single, so gates key on the marker instead of
// re-deriving the CPU count (same convention as sim_throughput and
// grid_throughput).  schema_version 2.
//
// Knobs:
//   DUFP_SMOKE=1      1-app, 2-repetition grid: CI smoke
//   DUFP_OUT_DIR=DIR  where BENCH_shard_scaling.json lands (default out)
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "harness/shard.h"

namespace dufp::bench {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One worker's whole life, run inside the fork: execute shard k of N
/// and stream the JSONL.  Exit code is the only channel back.
int child_main(const harness::GridSpec& spec, int shard, int shards,
               const std::string& out_file) {
  try {
    std::ofstream out(out_file, std::ios::binary);
    if (!out.good()) return 1;
    harness::ShardRunOptions opts;
    opts.shard = shard;
    opts.shards = shards;
    opts.threads = 1;
    harness::run_shard(spec, opts, out);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[shard %d] %s\n", shard, e.what());
    return 1;
  }
}

struct ShardedRun {
  double wall_seconds = 0.0;
  bool identical = false;
};

/// Forks `shards` single-threaded workers, waits, gathers, and
/// byte-compares the finalized outputs against the serial reference.
ShardedRun measure_sharded(const harness::GridSpec& spec, int shards,
                           const harness::GridOutputs& reference) {
  std::vector<std::string> files;
  for (int k = 0; k < shards; ++k) {
    files.push_back(
        out_path(strf("bench_shard_%d_of_%d.jsonl", k, shards)));
  }

  ShardedRun run;
  const double t0 = now_seconds();
  std::vector<pid_t> pids;
  for (int k = 0; k < shards; ++k) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return run;
    }
    if (pid == 0) {
      ::_exit(child_main(spec, k, shards, files[k]));
    }
    pids.push_back(pid);
  }
  bool ok = true;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "a shard worker failed\n");
    return run;
  }
  const auto outputs = harness::finalize_grid(
      spec, harness::gather_shards(spec, files));
  run.wall_seconds = now_seconds() - t0;  // workers + gather + finalize
  run.identical =
      outputs.evaluation_csv == reference.evaluation_csv &&
      outputs.merged_prometheus == reference.merged_prometheus;
  return run;
}

int run_main() {
  const bool smoke = std::getenv("DUFP_SMOKE") != nullptr;

  print_banner("shard_scaling: N-process sharded grid vs one process",
               "horizontal engine scaling (ROADMAP), not a paper figure");

  harness::GridSpec spec = harness::GridSpec::reference();
  if (smoke) {
    spec.name = "smoke";
    spec.apps = {workloads::AppId::cg};
    spec.tolerances = {0.10};
    spec.repetitions = 2;
  }
  const auto gp = harness::build_plan(spec);
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("grid: %s (%zu jobs across %zu cells), host_cpus=%u\n",
              spec.name.c_str(), gp.plan.job_count(), gp.plan.cell_count(),
              host_cpus);

  // The single-process reference (also the byte oracle).  threads=1: no
  // thread pool may exist before the forks below.
  const double t0 = now_seconds();
  const auto reference = harness::run_grid_serial(spec, 1);
  const double single_wall = now_seconds() - t0;
  std::printf("single process:  %7.3f s\n", single_wall);

  const std::vector<int> shard_counts{2, 4};
  std::vector<ShardedRun> runs;
  for (const int n : shard_counts) {
    const ShardedRun run = measure_sharded(spec, n, reference);
    runs.push_back(run);
    std::printf("%d processes:     %7.3f s  (%.2fx vs single, bytes %s)\n",
                n, run.wall_seconds,
                run.wall_seconds > 0.0 ? single_wall / run.wall_seconds : 0.0,
                run.identical ? "identical" : "DIFFER");
  }
  if (host_cpus < 2) {
    std::printf("note: host exposes %u CPU(s) — multi-process rows "
                "time-slice one core and measure sharding overhead, not "
                "speedup; interpret together with config.host_cpus\n",
                host_cpus);
  }

  std::string json = "{\n";
  json += "  \"schema_version\": 2,\n";
  json += "  \"bench\": \"shard_scaling\",\n";
  json += strf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += strf(
      "  \"config\": {\n"
      "    \"spec\": \"%s\",\n"
      "    \"jobs\": %zu,\n"
      "    \"cells\": %zu,\n"
      "    \"host_cpus\": %u\n"
      "  },\n",
      spec.name.c_str(), gp.plan.job_count(), gp.plan.cell_count(),
      host_cpus);
  json += strf(
      "  \"single_process\": {\n"
      "    \"wall_seconds\": %.6f\n"
      "  }",
      single_wall);
  bool all_identical = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    all_identical = all_identical && runs[i].identical;
    // The byte-identity verdict is meaningful on any host; the speedup
    // is not on one CPU (the workers time-slice a single core), so the
    // row then carries the machine-checkable skip marker instead of a
    // number that invites misreading (same convention as sim_throughput
    // / grid_throughput — gates key on the marker).
    std::string speedup_field;
    if (host_cpus >= 2) {
      speedup_field = strf(
          "    \"speedup_vs_single\": %.3f,\n",
          runs[i].wall_seconds > 0.0 ? single_wall / runs[i].wall_seconds
                                     : 0.0);
    } else {
      speedup_field = "    \"skipped_reason\": \"host_cpus==1\",\n";
    }
    json += strf(
        ",\n"
        "  \"processes_%d\": {\n"
        "    \"wall_seconds\": %.6f,\n"
        "%s"
        "    \"identical_bytes\": %s\n"
        "  }",
        shard_counts[i], runs[i].wall_seconds, speedup_field.c_str(),
        runs[i].identical ? "true" : "false");
  }
  json += "\n}\n";

  const std::string path = out_path("BENCH_shard_scaling.json");
  if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("JSON written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace dufp::bench

int main() { return dufp::bench::run_main(); }
