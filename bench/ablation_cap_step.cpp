// Ablation: power-cap step size (paper default 5 W, Sec. IV-A).
//
// Small steps probe gently but take many intervals to reach deep caps;
// large steps reach savings faster but overshoot the tolerance boundary
// and trigger more resets.
#include <iostream>

#include "bench_util.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner("Ablation: power cap step (paper default 5 W)",
                      "Sec. IV-A discussion");
  const int reps = harness::BenchOptions::from_env().repetitions;

  for (auto app : {workloads::AppId::cg, workloads::AppId::ep}) {
    std::printf("\n--- %s, DUFP @ 10 %% tolerated slowdown ---\n",
                workloads::app_name(app).c_str());
    harness::RunConfig base =
        harness::default_run_config(workloads::profile(app));
    base.seed = 303;
    const auto def = harness::run_repeated(base, reps);

    TextTable t({"cap step (W)", "slowdown %", "power savings %",
                 "energy change %", "cap resets / min"});
    for (double step : {2.5, 5.0, 10.0, 20.0}) {
      harness::note_progress(workloads::app_name(app) + " step " +
                             fmt_double(step, 1));
      harness::RunConfig cfg = base;
      cfg.mode = PolicyMode::dufp;
      cfg.tolerated_slowdown = 0.10;
      cfg.policy.cap_step_w = step;
      const auto res = harness::run_once(cfg);
      const auto agg = harness::run_repeated(cfg, reps);
      double resets = 0.0;
      for (const auto& st : res.agent_stats) {
        resets += static_cast<double>(st.cap_resets);
      }
      resets = resets / res.summary.exec_seconds * 60.0;
      t.add_row(fmt_double(step, 1),
                {harness::percent_over(agg.exec_seconds.mean,
                                       def.exec_seconds.mean),
                 -harness::percent_over(agg.avg_pkg_power_w.mean,
                                        def.avg_pkg_power_w.mean),
                 harness::percent_over(agg.total_energy_j.mean,
                                       def.total_energy_j.mean),
                 resets});
    }
    t.print(std::cout);
  }
  return 0;
}
