// Fig. 3c: impact on processor + DRAM energy consumption — change (% over
// the default run, negative = savings), DUF vs DUFP.
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner(
      "Fig. 3c: impact on CPU+DRAM energy consumption (change %)",
      "Fig. 3c (Sec. V-D)");
  const auto evals = bench::run_full_grid();
  const auto& tols = harness::paper_tolerances();

  for (PolicyMode mode : {PolicyMode::duf, PolicyMode::dufp}) {
    std::printf("\n--- %s: total energy change %% (negative = saved) ---\n",
                harness::policy_mode_name(mode).c_str());
    std::vector<std::string> header{"app"};
    for (double t : tols) header.push_back(bench::tol_label(t));
    TextTable table(header);
    for (const auto& e : evals) {
      std::vector<double> row;
      for (double t : tols) row.push_back(e.energy_change_pct(mode, t));
      table.add_row(workloads::app_name(e.app()), row);
    }
    table.print(std::cout);
  }

  int loss_at_20 = 0;
  int loss_at_10 = 0;
  for (const auto& e : evals) {
    if (e.energy_change_pct(PolicyMode::dufp, 0.20) > 0.3) ++loss_at_20;
    if (e.energy_change_pct(PolicyMode::dufp, 0.10) > 0.3) ++loss_at_10;
  }
  std::printf(
      "\nApplications losing energy with DUFP: %d at 20 %% tolerance, %d at"
      " 10 %%.\n", loss_at_20, loss_at_10);
  std::printf(
      "Paper: energy loss appears at 20 %% (LAMMPS, CG, LU, MG) and for MG\n"
      "at 10 %%; up to 10 %% tolerance most applications lose no energy,\n"
      "and CG @10 %% saves ~4.7 %% energy on top of ~14 %% power.\n");

  bench::write_grid_csv(
      "fig3c_energy.csv", {"energy_change_pct"}, evals,
      [](const harness::Evaluation& e, PolicyMode mode, double t) {
        return std::vector<std::string>{
            fmt_double(e.energy_change_pct(mode, t), 3)};
      });
  return 0;
}
