// Whole-grid throughput of the batched multi-run lane engine
// (DESIGN.md §7f): the tournament-shaped grid executed three ways —
//
//   sequential    one run_once per job, shared cell cache OFF: the
//                 pre-lane-engine (PR 9) execution model, the baseline
//                 every speedup is computed against
//   batched_cold  run_batch at the configured lane width, shared cache
//                 ON but cleared first: what a fresh process pays
//   batched_warm  the same batched grid again without clearing: the
//                 cross-run amortization claim, measured — repetition 2
//                 of an identical grid must report ZERO cold cell-edge
//                 builds
//
// Every leg is finalized through the shard engine's aggregation and the
// evaluation CSV (plus merged Prometheus when telemetry is on) is
// byte-compared against the sequential reference — the bench exits
// non-zero on any drift, so it doubles as a grid-scale identity gate.
//
// Cell-edge table economics (cold builds, planner probes, shared-cache
// hits, way evictions) are reported per job and summed per grid, so the
// shared-cache win is measured, not assumed.
//
// On a single-CPU host the lane-group threading row is skipped and
// recorded as {"skipped_reason": "host_cpus==1"} — same convention as
// sim_throughput / shard_scaling; gates key on the marker, not on
// re-deriving the CPU count.
//
// Grid shape and what the ratio means: on one CPU the whole batched win
// is cross-run cell-edge amortization, so the speedup is bounded by the
// sequential grid's edge-build share — which scales with REPETITIONS
// (identical configs re-deriving identical tables), the natural axis of
// a multi-run grid.  Measured on the 1-CPU dev container: the
// 5-repetition EP smoke grid reaches ~1.8-1.9x cold; a 1-repetition
// grid only ~1.1-1.4x (nothing to amortize); the all-apps
// 10-repetition grid ~1.65-1.7x (CG's longer runs dilute the build
// share).  Both shapes below therefore carry >=5 repetitions; the >=2x
// regime needs lane-group threading, i.e. a second core.
//
// Knobs:
//   DUFP_SMOKE=1      1 app x 2 tolerances x 5 repetitions: CI smoke +
//                     the shape the DUFP_CI_MIN_GRID_SPEEDUP gate tracks
//   DUFP_LANES=K      lane width of the batched legs (default 8)
//   DUFP_OUT_DIR=DIR  where BENCH_grid_throughput.json lands (default out)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/policy_registry.h"
#include "harness/shard.h"
#include "rapl/cell_cache.h"

namespace dufp::bench {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One executed grid leg: the per-job results (kept for economics and
/// per-job reporting) plus wall clock and the finalized byte surface.
struct Leg {
  double wall_seconds = 0.0;
  std::vector<std::uint64_t> job_cold_builds;
  std::vector<std::uint64_t> job_shared_hits;
  rapl::CellStats cells;  ///< summed over every job
  std::string evaluation_csv;
  std::string merged_prometheus;
};

void collect(Leg& leg, const harness::GridSpec& spec,
             std::vector<harness::RunResult> results) {
  leg.job_cold_builds.reserve(results.size());
  leg.job_shared_hits.reserve(results.size());
  for (const auto& res : results) {
    leg.job_cold_builds.push_back(res.cell_stats.cold_builds);
    leg.job_shared_hits.push_back(res.cell_stats.shared_hits);
    leg.cells.add(res.cell_stats);
  }
  const auto outputs = harness::finalize_grid(spec, std::move(results));
  leg.evaluation_csv = outputs.evaluation_csv;
  leg.merged_prometheus = outputs.merged_prometheus;
}

/// The PR 9 execution model: every job through run_once, in job order.
Leg run_sequential(const harness::GridSpec& spec,
                   const std::vector<harness::RunConfig>& configs) {
  Leg leg;
  std::vector<harness::RunResult> results;
  results.reserve(configs.size());
  const double t0 = now_seconds();
  for (const auto& cfg : configs) results.push_back(harness::run_once(cfg));
  leg.wall_seconds = now_seconds() - t0;
  collect(leg, spec, std::move(results));
  return leg;
}

/// The lane engine: the whole job list through run_batch.
Leg run_batched(const harness::GridSpec& spec,
                const std::vector<harness::RunConfig>& configs, int lanes,
                int threads) {
  Leg leg;
  harness::BatchOptions opts;
  opts.lanes = lanes;
  opts.threads = threads;
  const double t0 = now_seconds();
  std::vector<harness::RunResult> results = harness::run_batch(configs, opts);
  leg.wall_seconds = now_seconds() - t0;
  collect(leg, spec, std::move(results));
  return leg;
}

std::string cells_json(const rapl::CellStats& c, const char* indent) {
  return strf(
      "%s\"cells\": {\n"
      "%s  \"cold_builds\": %llu,\n"
      "%s  \"probes\": %llu,\n"
      "%s  \"shared_hits\": %llu,\n"
      "%s  \"local_hits\": %llu,\n"
      "%s  \"way_evictions\": %llu\n"
      "%s}",
      indent, indent, static_cast<unsigned long long>(c.cold_builds), indent,
      static_cast<unsigned long long>(c.probes), indent,
      static_cast<unsigned long long>(c.shared_hits), indent,
      static_cast<unsigned long long>(c.local_hits), indent,
      static_cast<unsigned long long>(c.way_evictions), indent);
}

void append_leg_json(std::string& json, const char* key, const Leg& leg,
                     std::size_t jobs, bool identical) {
  json += strf(
      "  \"%s\": {\n"
      "    \"wall_seconds\": %.6f,\n"
      "    \"jobs_per_second\": %.3f,\n"
      "    \"identical_bytes\": %s,\n",
      key, leg.wall_seconds,
      leg.wall_seconds > 0.0 ? static_cast<double>(jobs) / leg.wall_seconds
                             : 0.0,
      identical ? "true" : "false");
  json += cells_json(leg.cells, "    ");
  json += "\n  }";
}

void append_per_job_json(std::string& json, const char* key, const Leg& leg) {
  json += strf("    \"%s\": [", key);
  for (std::size_t i = 0; i < leg.job_cold_builds.size(); ++i) {
    json += strf("%s{\"cold_builds\": %llu, \"shared_hits\": %llu}",
                 i == 0 ? "" : ", ",
                 static_cast<unsigned long long>(leg.job_cold_builds[i]),
                 static_cast<unsigned long long>(leg.job_shared_hits[i]));
  }
  json += "]";
}

int run_main() {
  const auto opts = harness::BenchOptions::from_env();
  const bool smoke = std::getenv("DUFP_SMOKE") != nullptr;
  const int lanes = opts.resolved_lanes();
  const unsigned host_cpus = std::thread::hardware_concurrency();

  print_banner("grid_throughput: batched lane engine vs sequential runs",
               "multi-run batching (DESIGN.md §7f), not a paper figure");

  harness::GridSpec spec;
  spec.name = smoke ? "grid-throughput-smoke" : "grid-throughput";
  spec.apps = smoke ? std::vector<workloads::AppId>{workloads::AppId::ep}
                    : std::vector<workloads::AppId>{workloads::AppId::ep,
                                                    workloads::AppId::cg};
  spec.policies = core::PolicyRegistry::instance().names();
  spec.tolerances = {0.05, 0.10};
  // Smoke keeps enough repetitions for the amortization claim to be
  // non-trivial (see the shape note in the header): with 1 repetition
  // there is nothing for the shared table to amortize across.
  spec.repetitions = smoke ? 5 : opts.repetitions;
  spec.sockets = opts.sockets;

  const auto gp = harness::build_plan(spec);
  const std::size_t jobs = gp.plan.job_count();
  std::vector<harness::RunConfig> configs;
  configs.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    configs.push_back(gp.plan.job_config(j));
  }
  std::printf("grid: %s (%zu jobs across %zu cells), lanes=%d, host_cpus=%u\n",
              spec.name.c_str(), jobs, gp.plan.cell_count(), lanes, host_cpus);

  auto& shared = rapl::SharedCellCache::instance();
  const bool was_enabled = shared.enabled();

  // Sequential reference = the pre-lane-engine execution model: no
  // shared cache, one run at a time.
  shared.set_enabled(false);
  shared.clear();
  const Leg sequential = run_sequential(spec, configs);
  std::printf("sequential (PR 9 model): %7.3f s  (%llu cold edge builds)\n",
              sequential.wall_seconds,
              static_cast<unsigned long long>(sequential.cells.cold_builds));

  shared.set_enabled(true);
  shared.clear();
  const Leg cold = run_batched(spec, configs, lanes, /*threads=*/1);
  const bool cold_identical =
      cold.evaluation_csv == sequential.evaluation_csv &&
      cold.merged_prometheus == sequential.merged_prometheus;
  std::printf("batched cold (%d lanes):  %7.3f s  (%.2fx, bytes %s)\n", lanes,
              cold.wall_seconds,
              cold.wall_seconds > 0.0
                  ? sequential.wall_seconds / cold.wall_seconds
                  : 0.0,
              cold_identical ? "identical" : "DIFFER");

  // Warm repeat: the cache carries every edge the cold pass built.
  const Leg warm = run_batched(spec, configs, lanes, /*threads=*/1);
  const bool warm_identical =
      warm.evaluation_csv == sequential.evaluation_csv &&
      warm.merged_prometheus == sequential.merged_prometheus;
  const bool warm_is_warm = warm.cells.cold_builds == 0;
  std::printf("batched warm repeat:     %7.3f s  (%.2fx, bytes %s, "
              "%llu cold builds%s)\n",
              warm.wall_seconds,
              warm.wall_seconds > 0.0
                  ? sequential.wall_seconds / warm.wall_seconds
                  : 0.0,
              warm_identical ? "identical" : "DIFFER",
              static_cast<unsigned long long>(warm.cells.cold_builds),
              warm_is_warm ? "" : " — EXPECTED 0");

  // Lane-group threading only means something with a second core; on one
  // CPU the groups time-slice and the row would measure contention.
  bool have_threaded = false;
  Leg threaded;
  bool threaded_identical = false;
  if (host_cpus >= 2) {
    threaded = run_batched(spec, configs, lanes, /*threads=*/2);
    threaded_identical =
        threaded.evaluation_csv == sequential.evaluation_csv &&
        threaded.merged_prometheus == sequential.merged_prometheus;
    have_threaded = true;
    std::printf("batched warm, 2 threads: %7.3f s  (%.2fx, bytes %s)\n",
                threaded.wall_seconds,
                threaded.wall_seconds > 0.0
                    ? sequential.wall_seconds / threaded.wall_seconds
                    : 0.0,
                threaded_identical ? "identical" : "DIFFER");
  } else {
    std::printf("batched, 2 threads:      skipped (host_cpus==1)\n");
  }

  const auto cache = shared.stats();
  shared.set_enabled(was_enabled);

  std::string json = "{\n";
  json += "  \"schema_version\": 1,\n";
  json += "  \"bench\": \"grid_throughput\",\n";
  json += strf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += strf(
      "  \"config\": {\n"
      "    \"spec\": \"%s\",\n"
      "    \"jobs\": %zu,\n"
      "    \"cells\": %zu,\n"
      "    \"lanes\": %d,\n"
      "    \"host_cpus\": %u\n"
      "  },\n",
      spec.name.c_str(), jobs, gp.plan.cell_count(), lanes, host_cpus);
  append_leg_json(json, "sequential", sequential, jobs, /*identical=*/true);
  json += ",\n";
  append_leg_json(json, "batched_cold", cold, jobs, cold_identical);
  json += ",\n";
  append_leg_json(json, "batched_warm", warm, jobs, warm_identical);
  json += ",\n";
  if (have_threaded) {
    append_leg_json(json, "threaded", threaded, jobs, threaded_identical);
  } else {
    json += "  \"threaded\": {\n"
            "    \"skipped_reason\": \"host_cpus==1\"\n"
            "  }";
  }
  json += strf(
      ",\n"
      "  \"speedup\": {\n"
      "    \"batched_cold_vs_sequential\": %.3f,\n"
      "    \"batched_warm_vs_sequential\": %.3f\n"
      "  },\n",
      cold.wall_seconds > 0.0 ? sequential.wall_seconds / cold.wall_seconds
                              : 0.0,
      warm.wall_seconds > 0.0 ? sequential.wall_seconds / warm.wall_seconds
                              : 0.0);
  json += strf(
      "  \"shared_cache\": {\n"
      "    \"entries\": %llu,\n"
      "    \"hits\": %llu,\n"
      "    \"misses\": %llu,\n"
      "    \"inserts\": %llu,\n"
      "    \"full_drops\": %llu\n"
      "  },\n",
      static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.inserts),
      static_cast<unsigned long long>(cache.full_drops));
  json += "  \"per_job\": {\n";
  append_per_job_json(json, "sequential", sequential);
  json += ",\n";
  append_per_job_json(json, "batched_cold", cold);
  json += ",\n";
  append_per_job_json(json, "batched_warm", warm);
  json += "\n  }\n}\n";

  const std::string path = out_path("BENCH_grid_throughput.json");
  if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("JSON written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }

  const bool ok = cold_identical && warm_identical && warm_is_warm &&
                  (!have_threaded || threaded_identical);
  if (!ok) std::fprintf(stderr, "grid_throughput: FAILED an identity gate\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dufp::bench

int main() { return dufp::bench::run_main(); }
