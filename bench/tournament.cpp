// Policy tournament: every registered policy on the same footing.
//
// Runs a policy list (DUFP_POLICIES, default: everything in the
// PolicyRegistry — the four paper controllers plus the zoo) over a
// workloads x tolerances grid through the deterministic shard engine,
// then ranks the field.  A policy is scored per (app, tolerance) cell by
// whether it honoured the slowdown budget and by how much energy it
// saved; the ranking sorts by violation count first (a policy that blows
// its budget cannot win on energy) and mean energy change second.
//
// Outputs under DUFP_OUT_DIR:
//   tournament.csv        one ranked row per policy (the leaderboard)
//   tournament_cells.csv  every (app, policy, tolerance) grid point with
//                         health counters — identical bytes to the shard
//                         engine's evaluation CSV for the same spec
//   tournament_telemetry* with DUFP_TELEMETRY=1: merged Prometheus
//                         exposition plus job 0's full telemetry export
//
// Knobs: the usual DUFP_REPS / DUFP_SOCKETS / DUFP_THREADS / DUFP_QUIET /
// DUFP_OUT_DIR, plus
//   DUFP_POLICIES=A,B   restrict the field (registry names, any alias)
//   DUFP_FAULT_RATE=R   run the whole tournament under a fault storm —
//                       rankings then reward robustness, not just savings
//   DUFP_SMOKE=1        1 app x 1 tolerance x 1 repetition: CI smoke
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/policy_registry.h"
#include "harness/shard.h"
#include "telemetry/export.h"

namespace dufp::bench {
namespace {

/// A cell violates its budget when the mean slowdown exceeds the
/// tolerated percentage by more than one point of slack (the paper's
/// controllers converge to the budget, so a hard `>` would flag noise).
constexpr double kViolationSlackPct = 1.0;

struct Standing {
  std::string policy;
  int cells = 0;
  int violations = 0;
  double mean_slowdown_pct = 0.0;
  double mean_pkg_savings_pct = 0.0;
  double mean_dram_savings_pct = 0.0;
  double mean_energy_change_pct = 0.0;
  double worst_slowdown_pct = 0.0;
};

/// Aggregates one policy's column of the grid into its leaderboard row.
Standing score(const std::string& policy,
               const std::vector<harness::Evaluation>& evals,
               const std::vector<double>& tolerances) {
  Standing s;
  s.policy = policy;
  for (const auto& e : evals) {
    for (const double tol : tolerances) {
      const double slow = e.slowdown_pct(policy, tol);
      s.cells += 1;
      if (slow > tol * 100.0 + kViolationSlackPct) s.violations += 1;
      s.mean_slowdown_pct += slow;
      s.mean_pkg_savings_pct += e.pkg_power_savings_pct(policy, tol);
      s.mean_dram_savings_pct += e.dram_power_savings_pct(policy, tol);
      s.mean_energy_change_pct += e.energy_change_pct(policy, tol);
      s.worst_slowdown_pct = std::max(s.worst_slowdown_pct, slow);
    }
  }
  if (s.cells > 0) {
    s.mean_slowdown_pct /= s.cells;
    s.mean_pkg_savings_pct /= s.cells;
    s.mean_dram_savings_pct /= s.cells;
    s.mean_energy_change_pct /= s.cells;
  }
  return s;
}

int run_main() {
  const auto opts = harness::BenchOptions::from_env();
  const bool smoke = std::getenv("DUFP_SMOKE") != nullptr;

  print_banner("tournament: every registered policy, one leaderboard",
               "policy-zoo extension (no paper figure)");

  harness::GridSpec spec;
  spec.name = smoke ? "tournament-smoke" : "tournament";
  spec.apps = smoke ? std::vector<workloads::AppId>{workloads::AppId::ep}
                    : workloads::all_apps();
  spec.policies = opts.policies.empty()
                      ? core::PolicyRegistry::instance().names()
                      : opts.policies;
  spec.tolerances = smoke ? std::vector<double>{0.10}
                          : std::vector<double>{0.05, 0.10};
  spec.repetitions = smoke ? 1 : opts.repetitions;
  spec.sockets = opts.sockets;
  spec.fault_rate = opts.fault_rate;
  spec.fault_seed = opts.fault_seed;
  spec.telemetry = opts.telemetry;

  std::printf("field: %zu policies x %zu apps x %zu tolerances, "
              "%d repetition(s)%s\n\n",
              spec.policies.size(), spec.apps.size(), spec.tolerances.size(),
              spec.repetitions,
              spec.fault_rate > 0.0 ? " — under a fault storm" : "");

  const auto outputs =
      harness::run_grid_serial(spec, opts.resolved_threads());

  std::vector<Standing> board;
  for (const auto& policy : spec.policies) {
    board.push_back(score(policy, outputs.evaluations, spec.tolerances));
  }
  // Budget first, energy second: a violating policy ranks below every
  // compliant one no matter how much energy it saved.  Ties (rare,
  // deterministic sim or not) keep registration order via stable_sort.
  std::stable_sort(board.begin(), board.end(),
                   [](const Standing& a, const Standing& b) {
                     if (a.violations != b.violations)
                       return a.violations < b.violations;
                     return a.mean_energy_change_pct <
                            b.mean_energy_change_pct;
                   });

  const std::string csv_path = out_path("tournament.csv");
  CsvWriter csv(csv_path);
  csv.write_row({"rank", "policy", "cells", "violations",
                 "mean_slowdown_pct", "worst_slowdown_pct",
                 "mean_pkg_power_savings_pct", "mean_dram_power_savings_pct",
                 "mean_energy_change_pct"});
  TextTable table({"rank", "policy", "viol", "slowdown %", "pkg save %",
                   "energy %"});
  for (std::size_t i = 0; i < board.size(); ++i) {
    const Standing& s = board[i];
    const std::string rank = std::to_string(i + 1);
    csv.write_row({rank, s.policy, std::to_string(s.cells),
                   std::to_string(s.violations),
                   fmt_double(s.mean_slowdown_pct, 3),
                   fmt_double(s.worst_slowdown_pct, 3),
                   fmt_double(s.mean_pkg_savings_pct, 3),
                   fmt_double(s.mean_dram_savings_pct, 3),
                   fmt_double(s.mean_energy_change_pct, 3)});
    table.add_row({rank, s.policy, std::to_string(s.violations),
                   strf("%6.2f", s.mean_slowdown_pct),
                   strf("%6.2f", s.mean_pkg_savings_pct),
                   strf("%6.2f", s.mean_energy_change_pct)});
  }
  table.print(std::cout);
  std::printf("\nLeaderboard written to %s\n", csv_path.c_str());

  const std::string cells_path = out_path("tournament_cells.csv");
  {
    std::ofstream out(cells_path, std::ios::binary);
    out << outputs.evaluation_csv;
  }
  std::printf("Per-cell grid written to %s\n", cells_path.c_str());

  if (spec.telemetry) {
    const std::string prom_path = out_path("tournament_telemetry.prom");
    std::ofstream out(prom_path, std::ios::binary);
    out << outputs.merged_prometheus;
    std::printf("Merged Prometheus exposition written to %s\n",
                prom_path.c_str());
    if (outputs.job0_telemetry.has_value()) {
      const auto files = telemetry::export_run(
          *outputs.job0_telemetry, out_path("tournament_telemetry"));
      for (const auto& f : files) std::printf("  %s\n", f.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace dufp::bench

int main() { return dufp::bench::run_main(); }
