// Table I: target architecture characteristics — read back through the
// same MSR/powercap interfaces the runtime uses, not hard-coded, so the
// table doubles as a smoke test of the register plumbing.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "hwmodel/machine_model.h"
#include "msr/sim_msr.h"
#include "powercap/uncore_control.h"
#include "powercap/zone.h"
#include "rapl/rapl_engine.h"

using namespace dufp;

int main() {
  bench::print_banner("Table I: target architecture characteristics",
                      "Table I (Sec. IV-A)");

  hw::MachineConfig machine;
  hw::MachineModel model(machine);
  msr::SimulatedMsr dev(machine.socket.cores);
  rapl::RaplEngine engine(model.socket(0), dev);
  powercap::PackageZone zone(dev, 0);
  powercap::UncoreControl uncore(dev);

  TextTable t({"cores", "uncore frequency (GHz)", "long term (W)",
               "short term (W)"});
  t.add_row({std::to_string(machine.sockets * machine.socket.cores),
             strf("[%.1f-%.1f]", uncore.window_min_mhz() / 1000.0,
                  uncore.window_max_mhz() / 1000.0),
             fmt_double(zone.power_limit_w(powercap::ConstraintId::long_term), 0),
             fmt_double(zone.power_limit_w(powercap::ConstraintId::short_term), 0)});
  t.print(std::cout);

  std::printf("\nPer-socket details (from MSRs):\n");
  TextTable d({"property", "value"});
  d.add_row({"model", machine.socket.model_name});
  d.add_row({"sockets", std::to_string(machine.sockets)});
  d.add_row({"cores/socket", std::to_string(machine.socket.cores)});
  d.add_row({"core clock (all-core max)",
             strf("%.1f GHz", machine.socket.core_max_mhz / 1000.0)});
  d.add_row({"core base clock",
             strf("%.1f GHz", machine.socket.core_base_mhz / 1000.0)});
  d.add_row({"TDP (MSR_PKG_POWER_INFO)", strf("%.0f W", zone.tdp_w())});
  d.add_row({"long-term window",
             strf("%.3f s", zone.time_window_s(powercap::ConstraintId::long_term))});
  d.add_row({"short-term window",
             strf("%.4f s", zone.time_window_s(powercap::ConstraintId::short_term))});
  d.add_row({"uncore step", strf("%.0f MHz", machine.socket.uncore_step_mhz)});
  d.add_row({"cap step (DUFP policy)", "5 W"});
  d.add_row({"minimum cap (DUFP policy)", "65 W"});
  d.print(std::cout);

  std::printf("\nPaper reference: 64 cores, uncore [1.2-2.4] GHz, "
              "long term 125 W, short term 150 W.\n");
  return 0;
}
