// Fig. 1b: partial power capping of CG's memory-intensive prologue.
//
// The cap (110 W / 100 W, uncore scaling active) is applied only while
// the `init` phase runs — about 5 % of the execution — and reset to the
// default as soon as it completes (Sec. II-A).  The figure reports the
// power consumed by the *studied phase* as a ratio over the processor
// budget.
#include <iostream>

#include "bench_util.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner(
      "Fig. 1b: power of CG's memory phase under partial capping",
      "Fig. 1b (Sec. II-A)");

  const auto& cg = workloads::profile(workloads::AppId::cg);
  const int reps = harness::BenchOptions::from_env().repetitions;

  harness::RunConfig base = harness::default_run_config(cg);
  base.seed = 102;
  const double budget_w =
      base.machine.socket.long_term_default_w * base.machine.sockets;

  struct Config {
    const char* label;
    PolicyMode mode;
    std::optional<double> cap;
  };
  const Config configs[] = {
      {"default", PolicyMode::none, std::nullopt},
      {"uncore freq. scaling (DUF)", PolicyMode::duf, std::nullopt},
      {"DUF + phase cap 110 W", PolicyMode::duf, 110.0},
      {"DUF + phase cap 100 W", PolicyMode::duf, 100.0},
  };

  TextTable t({"configuration", "phase power (W)", "phase power / budget",
               "phase savings vs budget %", "phase duration (s)"});
  for (const auto& c : configs) {
    harness::note_progress(c.label);
    harness::RunConfig cfg = base;
    cfg.mode = c.mode;
    cfg.tolerated_slowdown = 0.05;
    if (c.cap.has_value()) {
      cfg.phase_cap = harness::PhaseCapSpec{"init", *c.cap};
    }
    const auto r = harness::run_repeated(cfg, reps);
    const auto& init = r.mean_phase_totals.at("init");
    const double phase_power = init.pkg_energy_j / init.wall_seconds;
    t.add_row({c.label, fmt_double(phase_power, 1),
               fmt_double(phase_power / budget_w, 3),
               fmt_double((1.0 - phase_power / budget_w) * 100.0, 2),
               fmt_double(init.wall_seconds, 2)});
  }
  t.print(std::cout);

  std::printf(
      "\nPaper's observations: the studied phase consumes close to the\n"
      "full budget by default; a 110 W / 100 W cap cuts its power by\n"
      "~16 %% / ~19 %% over the budget, more than uncore scaling alone.\n");
  return 0;
}
