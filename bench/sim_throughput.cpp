// End-to-end simulation-engine throughput on the fixed reference grid:
// 4 sockets x NPB CG under DUFP agents at the paper's control interval —
// the exact shape every figure bench pounds on.  Reports ticks/sec and
// simulated socket-seconds per wall second, serial vs socket-parallel,
// and writes a machine-readable BENCH_sim_throughput.json (schema in
// bench/sim_throughput_schema.json) so the perf trajectory has tracked
// data points.  On a single-CPU host the socket-parallel row is skipped
// and recorded as {"skipped_reason": "host_cpus==1"} — a time-sliced
// "speedup" would only measure batching overhead.
//
// Knobs:
//   DUFP_SMOKE=1      tiny profile + 1 repetition: CI smoke (validates the
//                     JSON contract, makes no perf claim)
//   DUFP_BENCH_REPS=N wall-clock repetitions per engine variant (default
//                     3; the fastest repetition is reported)
//   DUFP_OUT_DIR=DIR  where BENCH_sim_throughput.json lands (default out)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.h"

namespace dufp::bench {
namespace {

/// Serial ticks/sec of the *seed* engine (pre hot-path optimization, PR 3
/// state) on this protocol: Release build, 4 sockets x CG, DUFP agents,
/// best of 5 repetitions, measured on the dev container that produced the
/// checked-in BENCH_sim_throughput.json immediately before the hot-path
/// rework landed.  This is the fixed reference the speedup block is
/// computed against; re-measure when moving the tracked numbers to
/// different hardware.
constexpr double kSeedEngineTicksPerSec = 317607.0;

struct Measurement {
  double wall_seconds = 0.0;    ///< fastest repetition
  double sim_seconds = 0.0;     ///< simulated run length
  double ticks = 0.0;           ///< engine steps per run
  int sockets = 0;
  /// Leap/step/batch split of the run (identical across repetitions: the
  /// engine is deterministic, so the last repetition's stats serve).
  sim::BatchStats stats;

  double ticks_per_sec() const {
    return wall_seconds > 0.0 ? ticks / wall_seconds : 0.0;
  }
  double socket_ticks_per_sec() const {
    return ticks_per_sec() * sockets;
  }
  /// Simulated socket-seconds delivered per wall second.
  double socket_sim_rate() const {
    return wall_seconds > 0.0 ? sim_seconds * sockets / wall_seconds : 0.0;
  }
};

harness::RunConfig bench_config(const workloads::WorkloadProfile& profile,
                                int sockets) {
  harness::RunConfig cfg;
  cfg.profile = &profile;
  cfg.machine.sockets = sockets;
  cfg.mode = harness::PolicyMode::dufp;
  cfg.tolerated_slowdown = 0.10;
  cfg.seed = 1;
  return cfg;
}

/// A ~2 s CG-shaped stand-in for smoke runs.
workloads::WorkloadProfile smoke_profile() {
  workloads::WorkloadProfile w("smoke", "short CG-like alternation");
  workloads::PhaseSpec mem;
  mem.name = "mem";
  mem.nominal_seconds = 0.5;
  mem.gflops_ref = 8.0;
  mem.oi = 0.1;
  mem.w_cpu = 0.15;
  mem.w_mem = 0.7;
  mem.w_unc = 0.1;
  mem.w_fixed = 0.05;
  w.add_phase(mem);
  workloads::PhaseSpec cpu;
  cpu.name = "cpu";
  cpu.nominal_seconds = 0.5;
  cpu.gflops_ref = 50.0;
  cpu.oi = 6.0;
  cpu.w_cpu = 0.85;
  cpu.w_mem = 0.05;
  cpu.w_unc = 0.05;
  cpu.w_fixed = 0.05;
  w.add_phase(cpu);
  w.loop(2, {"mem", "cpu"});
  return w;
}

Measurement measure(const harness::RunConfig& cfg, int reps) {
  Measurement m;
  m.sockets = cfg.machine.sockets;
  m.wall_seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const harness::RunResult res = harness::run_once(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(t1 - t0).count();
    m.wall_seconds = std::min(m.wall_seconds, wall);
    m.sim_seconds = res.summary.exec_seconds;
    m.ticks = res.summary.exec_seconds / cfg.sim.tick.seconds();
    m.stats = res.batch_stats;
  }
  return m;
}

void append_measurement_json(std::string& json, const char* key,
                             const Measurement& m) {
  json += strf(
      "  \"%s\": {\n"
      "    \"wall_seconds\": %.6f,\n"
      "    \"sim_seconds\": %.6f,\n"
      "    \"ticks\": %.0f,\n"
      "    \"ticks_per_sec\": %.1f,\n"
      "    \"socket_ticks_per_sec\": %.1f,\n"
      "    \"socket_sim_seconds_per_wall_sec\": %.2f,\n"
      "    \"leap\": {\n"
      "      \"leapt_ticks\": %lld,\n"
      "      \"stepped_ticks\": %lld,\n"
      "      \"batched_ticks\": %lld,\n"
      "      \"leaps\": %lld,\n"
      "      \"max_leap\": %lld,\n"
      "      \"events_fired\": %lld\n"
      "    }\n"
      "  }",
      key, m.wall_seconds, m.sim_seconds, m.ticks, m.ticks_per_sec(),
      m.socket_ticks_per_sec(), m.socket_sim_rate(),
      static_cast<long long>(m.stats.leapt_ticks),
      static_cast<long long>(m.stats.stepped_ticks),
      static_cast<long long>(m.stats.batched_ticks),
      static_cast<long long>(m.stats.leaps),
      static_cast<long long>(m.stats.max_leap),
      static_cast<long long>(m.stats.events_fired));
}

int run_main() {
  const bool smoke = std::getenv("DUFP_SMOKE") != nullptr;
  int reps = 3;
  if (const char* r = std::getenv("DUFP_BENCH_REPS")) {
    reps = std::max(1, std::atoi(r));
  }
  if (smoke) reps = 1;

  print_banner("sim_throughput: engine ticks/sec on the reference grid",
               "engine scaling (ROADMAP north star), not a paper figure");

  const workloads::WorkloadProfile smoke_prof = smoke_profile();
  const workloads::WorkloadProfile& profile =
      smoke ? smoke_prof : workloads::profile(workloads::AppId::cg);
  const int sockets = 4;  // fixed reference grid: yeti-2
  harness::RunConfig serial_cfg = bench_config(profile, sockets);

  std::printf("grid: %d sockets x %s (%.0f s nominal), DUFP agents, "
              "%d repetition(s)\n",
              sockets, smoke ? "smoke" : "CG",
              profile.nominal_total_seconds(), reps);

  const Measurement serial = measure(serial_cfg, reps);
  std::printf("serial:          %10.0f ticks/s  (%.1f socket-sim-s / wall-s)\n",
              serial.ticks_per_sec(), serial.socket_sim_rate());
  std::printf("  leap split:    %lld leapt + %lld stepped ticks "
              "(%lld leaps, max %lld, %lld events)\n",
              static_cast<long long>(serial.stats.leapt_ticks),
              static_cast<long long>(serial.stats.stepped_ticks),
              static_cast<long long>(serial.stats.leaps),
              static_cast<long long>(serial.stats.max_leap),
              static_cast<long long>(serial.stats.events_fired));

  // With a single hardware thread the socket-parallel row time-slices
  // one core: it measures the batching machinery's overhead, not a
  // speedup.  Rather than publish a number that invites misreading, the
  // row is skipped and carries a machine-checkable marker the CI gate
  // keys on (same convention as shard_scaling / grid_throughput).
  const unsigned host_cpus = std::thread::hardware_concurrency();
  const bool run_parallel = host_cpus >= 2;
  Measurement par;
  if (run_parallel) {
    harness::RunConfig par_cfg = serial_cfg;
    par_cfg.sim.socket_threads = sockets;
    par = measure(par_cfg, reps);
    std::printf(
        "socket_threads=%d:%10.0f ticks/s  (%.1f socket-sim-s / wall-s)\n",
        sockets, par.ticks_per_sec(), par.socket_sim_rate());
  } else {
    std::printf("socket_threads=%d: skipped (host_cpus==1)\n", sockets);
  }

  std::string json = "{\n";
  json += "  \"schema_version\": 3,\n";
  json += "  \"bench\": \"sim_throughput\",\n";
  json += strf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += strf(
      "  \"config\": {\n"
      "    \"sockets\": %d,\n"
      "    \"app\": \"%s\",\n"
      "    \"mode\": \"dufp\",\n"
      "    \"tick_us\": %lld,\n"
      "    \"repetitions\": %d,\n"
      "    \"host_cpus\": %u\n"
      "  },\n",
      sockets, smoke ? "smoke" : "CG",
      static_cast<long long>(serial_cfg.sim.tick.micros()), reps, host_cpus);
  json += strf(
      "  \"baseline\": {\n"
      "    \"ticks_per_sec\": %.1f,\n"
      "    \"note\": \"seed engine (pre hot-path PR), same protocol\"\n"
      "  },\n",
      kSeedEngineTicksPerSec);
  append_measurement_json(json, "serial", serial);
  json += ",\n";
  if (run_parallel) {
    append_measurement_json(json, "socket_threads_4", par);
  } else {
    json += "  \"socket_threads_4\": {\n"
            "    \"skipped_reason\": \"host_cpus==1\"\n"
            "  }";
  }
  json += ",\n";
  json += strf("  \"speedup\": {\n"
               "    \"serial_vs_baseline\": %.3f",
               kSeedEngineTicksPerSec > 0.0
                   ? serial.ticks_per_sec() / kSeedEngineTicksPerSec
                   : 0.0);
  if (run_parallel) {
    json += strf(
        ",\n"
        "    \"parallel_vs_serial\": %.3f,\n"
        "    \"parallel_vs_baseline\": %.3f\n",
        serial.ticks_per_sec() > 0.0
            ? par.ticks_per_sec() / serial.ticks_per_sec()
            : 0.0,
        kSeedEngineTicksPerSec > 0.0
            ? par.ticks_per_sec() / kSeedEngineTicksPerSec
            : 0.0);
  } else {
    json += "\n";
  }
  json += "  }\n}\n";

  const std::string path = out_path("BENCH_sim_throughput.json");
  if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("JSON written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dufp::bench

int main() { return dufp::bench::run_main(); }
