// Fig. 1a: CG under whole-run static power caps.
//
// Four configurations, as in the paper's motivation experiment
// (Sec. II-A): the default architecture configuration, dynamic uncore
// frequency scaling (DUF) alone, and DUF combined with static caps of
// 110 W and 100 W programmed before the run.  Reported as ratios over the
// default execution time and over the *power budget allocated to the
// processor* (125 W per socket), exactly like the figure.
#include <iostream>

#include "bench_util.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner("Fig. 1a: power capping on CG (whole run)",
                      "Fig. 1a (Sec. II-A)");

  const auto& cg = workloads::profile(workloads::AppId::cg);
  const int reps = harness::BenchOptions::from_env().repetitions;

  harness::RunConfig base = harness::default_run_config(cg);
  base.seed = 101;
  const double budget_w =
      base.machine.socket.long_term_default_w * base.machine.sockets;

  struct Config {
    const char* label;
    PolicyMode mode;
    std::optional<double> cap;
  };
  const Config configs[] = {
      {"default", PolicyMode::none, std::nullopt},
      {"uncore freq. scaling (DUF)", PolicyMode::duf, std::nullopt},
      {"DUF + power cap 110 W", PolicyMode::duf, 110.0},
      {"DUF + power cap 100 W", PolicyMode::duf, 100.0},
  };

  std::optional<harness::RepeatedResult> def;
  TextTable t({"configuration", "exec time ratio", "power / budget",
               "overhead %", "power savings vs budget %"});
  for (const auto& c : configs) {
    harness::note_progress(c.label);
    harness::RunConfig cfg = base;
    cfg.mode = c.mode;
    cfg.tolerated_slowdown = 0.05;  // DUF's uncore tolerance in the figure
    cfg.static_cap_w = c.cap;
    const auto r = harness::run_repeated(cfg, reps);
    if (!def) def = r;
    const double time_ratio = r.exec_seconds.mean / def->exec_seconds.mean;
    const double power_ratio = r.avg_pkg_power_w.mean / budget_w;
    t.add_row({c.label, fmt_double(time_ratio, 3), fmt_double(power_ratio, 3),
               fmt_double((time_ratio - 1.0) * 100.0, 2),
               fmt_double((1.0 - power_ratio) * 100.0, 2)});
  }
  t.print(std::cout);

  std::printf(
      "\nPaper's observations to compare against (ratios over the 125 W\n"
      "budget): UFS alone saves little; +110 W cap ~16 %% savings at\n"
      "~7.15 %% overhead; +100 W cap ~24 %% savings at ~12 %% overhead —\n"
      "static caps save power but the overhead is uncontrolled.\n");
  return 0;
}
