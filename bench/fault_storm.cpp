// Robustness bench: every controller under a deterministic fault storm.
//
// Runs CG under each policy mode with the substrate injecting transient
// MSR errors, msr-safe write denials, bit flips, stale / dropped samples
// and a forced RAPL energy wraparound, then reports how much the agents
// absorbed (retries), how much they gave up on (failures, degradations)
// and what it cost in time / power vs the same storm-free run.
//
// Knobs: DUFP_FAULT_RATE (default 0.02 here — this bench always storms),
// DUFP_FAULT_SEED, plus the usual DUFP_REPS / DUFP_SOCKETS / DUFP_THREADS.
// With DUFP_TELEMETRY=1 the bench additionally runs one instrumented
// DUFP repetition and exports the full telemetry plane — Prometheus
// exposition, Chrome trace JSON, JSONL and any watchdog flight-recorder
// dumps — under DUFP_OUT_DIR (see EXPERIMENTS.md, "Capturing a flight
// recorder dump").
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "faults/fault_plan.h"
#include "telemetry/export.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  const auto opts = harness::BenchOptions::from_env();
  const double rate = opts.fault_rate > 0.0 ? opts.fault_rate : 0.02;

  bench::print_banner("Fault storm: controller robustness under substrate "
                      "failures",
                      "robustness extension (no paper figure)");
  std::printf("Storm: rate %g, seed %llu, forced energy wraparound\n\n", rate,
              static_cast<unsigned long long>(opts.fault_seed));

  const auto& prof = workloads::profile(workloads::AppId::cg);
  const std::vector<PolicyMode> modes{PolicyMode::duf, PolicyMode::dufp,
                                      PolicyMode::dufpf, PolicyMode::dnpc};

  // Storm-free reference for the cost-of-faults column.
  harness::RunConfig base = harness::default_run_config(prof);
  base.tolerated_slowdown = 0.10;
  base.faults = faults::FaultOptions{};  // clean, whatever the env says

  const std::string csv_path = bench::out_path("fault_storm.csv");
  CsvWriter csv(csv_path);
  csv.write_row({"mode", "exec_s", "exec_s_clean", "avg_pkg_power_w",
                 "faults_injected", "actuation_retries", "actuation_failures",
                 "sample_read_failures", "samples_rejected", "degradations",
                 "reengagements", "intervals_degraded"});

  TextTable table({"mode", "exec s (storm)", "exec s (clean)", "health"});
  for (PolicyMode mode : modes) {
    harness::RunConfig clean = base;
    clean.mode = mode;
    const auto ref = harness::run_repeated(clean, opts.repetitions);

    harness::RunConfig storm = clean;
    storm.faults = faults::FaultOptions::storm(rate, opts.fault_seed);
    const auto res = harness::run_repeated(storm, opts.repetitions);

    table.add_row({harness::policy_mode_name(mode),
                   strf("%7.2f", res.exec_seconds.mean),
                   strf("%7.2f", ref.exec_seconds.mean),
                   bench::health_summary(res.health)});
    csv.write_row({harness::policy_mode_name(mode),
                   fmt_double(res.exec_seconds.mean, 3),
                   fmt_double(ref.exec_seconds.mean, 3),
                   fmt_double(res.avg_pkg_power_w.mean, 3),
                   std::to_string(res.health.faults_injected),
                   std::to_string(res.health.actuation_retries),
                   std::to_string(res.health.actuation_failures),
                   std::to_string(res.health.sample_read_failures),
                   std::to_string(res.health.samples_rejected),
                   std::to_string(res.health.degradations),
                   std::to_string(res.health.reengagements),
                   std::to_string(res.health.intervals_degraded)});
  }
  table.print(std::cout);

  std::printf(
      "\nEvery run completed under the storm; degraded sockets fail safe\n"
      "to the hardware defaults and re-engage with exponential backoff.\n"
      "Raw series written to %s\n", csv_path.c_str());

  if (opts.telemetry) {
    // One instrumented DUFP repetition under the same storm: the flight
    // recorders capture the interval-by-interval history and every
    // watchdog fail-open dumps the last moments before degradation.
    harness::RunConfig instr = base;
    instr.mode = PolicyMode::dufp;
    instr.faults = faults::FaultOptions::storm(rate, opts.fault_seed);
    instr.telemetry.enabled = true;
    const auto res = harness::run_once(instr);
    const auto files = telemetry::export_run(
        *res.telemetry, bench::out_path("fault_storm_telemetry"));
    std::printf("\nTelemetry (1 instrumented DUFP run, %zu metric series, "
                "%zu flight dumps):\n",
                res.telemetry->metrics.size(), res.telemetry->dumps.size());
    for (const auto& f : files) std::printf("  %s\n", f.c_str());
  }
  return 0;
}
