// Performance microbenchmarks (google-benchmark): cost of the building
// blocks that run on every simulated millisecond or every control
// interval.  Keeps the simulator's throughput honest — the figure benches
// execute hundreds of millions of socket-ticks.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/agent.h"
#include "core/dufp.h"
#include "hwmodel/socket_model.h"
#include "msr/sim_msr.h"
#include "perfmon/sampler.h"
#include "perfmon/sim_counter_source.h"
#include "rapl/rapl_engine.h"
#include "sim/simulation.h"
#include "telemetry/telemetry.h"
#include "workloads/profiles.h"

using namespace dufp;

namespace {

hw::PhaseDemand bench_demand() {
  hw::PhaseDemand d;
  d.w_cpu = 0.6;
  d.w_mem = 0.3;
  d.w_unc = 0.0;
  d.w_fixed = 0.1;
  d.cpu_activity = 0.95;
  d.mem_activity = 0.8;
  d.flops_rate_ref = 50e9;
  d.bytes_rate_ref = 25e9;
  return d;
}

void BM_PowerModelForward(benchmark::State& state) {
  const hw::SocketConfig cfg;
  const hw::PowerModel model(cfg.power, cfg.cores, cfg.f_ref_mhz(),
                             cfg.fu_ref_mhz());
  const auto d = bench_demand();
  double f = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.package_power_w(f, 2000.0, d));
    f = f >= 2800.0 ? 1000.0 : f + 100.0;
  }
}
BENCHMARK(BM_PowerModelForward);

void BM_PowerModelInverse(benchmark::State& state) {
  const hw::SocketConfig cfg;
  const hw::PowerModel model(cfg.power, cfg.cores, cfg.f_ref_mhz(),
                             cfg.fu_ref_mhz());
  const auto d = bench_demand();
  double target = 70.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.core_mhz_for_power(target, 2000.0, d));
    target = target >= 115.0 ? 70.0 : target + 5.0;
  }
}
BENCHMARK(BM_PowerModelInverse);

void BM_SocketEvaluate(benchmark::State& state) {
  const hw::SocketConfig cfg;
  hw::SocketModel socket(cfg, 0);
  socket.set_demand(bench_demand());
  for (auto _ : state) {
    benchmark::DoNotOptimize(socket.evaluate());
  }
}
BENCHMARK(BM_SocketEvaluate);

void BM_GovernorTick(benchmark::State& state) {
  const hw::SocketConfig cfg;
  hw::SocketModel socket(cfg, 0);
  socket.set_demand(bench_demand());
  msr::SimulatedMsr dev(cfg.cores);
  rapl::RaplEngine engine(socket, dev);
  for (auto _ : state) {
    engine.tick();
    const auto inst = socket.evaluate();
    engine.record(inst, 0.001);
    benchmark::DoNotOptimize(inst.pkg_power_w);
  }
}
BENCHMARK(BM_GovernorTick);

void BM_DufpDecide(benchmark::State& state) {
  core::PolicyConfig policy;
  policy.tolerated_slowdown = 0.10;
  core::DufpController controller(policy, core::UncoreLimits{},
                                  core::CapLimits{});
  perfmon::Sample s;
  s.flops_rate = 50e9;
  s.bytes_rate = 25e9;
  s.pkg_power_w = 100.0;
  s.interval_s = 0.2;
  double wiggle = 0.0;
  for (auto _ : state) {
    s.flops_rate = 50e9 * (1.0 + 0.02 * wiggle);
    wiggle = wiggle >= 1.0 ? -1.0 : wiggle + 0.1;
    benchmark::DoNotOptimize(controller.decide(s));
  }
}
BENCHMARK(BM_DufpDecide);

/// One agent control interval (sample + decide + actuate) on a fully
/// wired single-socket rig, preceded by one millisecond of physics so
/// the counters keep moving.  The physics cost is identical in both
/// variants below, so the Instrumented/Disabled delta bounds the
/// telemetry overhead — the acceptance budget is <= 5 % per interval.
void run_agent_interval(benchmark::State& state, bool instrumented) {
  const hw::SocketConfig cfg;
  hw::SocketModel socket(cfg, 0);
  socket.set_demand(bench_demand());
  msr::SimulatedMsr dev(cfg.cores);
  rapl::RaplEngine engine(socket, dev);
  powercap::PackageZone zone(dev, 0);
  powercap::UncoreControl uncore(dev);
  perfmon::SimCounterSource source(socket, dev);

  std::unique_ptr<telemetry::Telemetry> telem;
  if (instrumented) {
    telemetry::TelemetryConfig tc;
    tc.enabled = true;
    telem = std::make_unique<telemetry::Telemetry>(tc, 1);
  }

  core::PolicyConfig policy;
  policy.tolerated_slowdown = 0.10;
  perfmon::SamplerOptions so;
  so.noise_sigma = 0.0;
  perfmon::IntervalSampler sampler(source, cfg.core_base_mhz, Rng(3), so);
  core::Agent agent(core::PolicyMode::dufp, policy, zone, uncore,
                    std::move(sampler), nullptr,
                    telem ? &telem->socket(0) : nullptr);

  SimTime now = SimTime::zero();
  for (auto _ : state) {
    engine.tick();
    const auto inst = socket.evaluate();
    socket.accumulate(inst, 0.001);
    engine.record(inst, 0.001);
    now += policy.interval;
    agent.on_interval(now);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_AgentIntervalDisabled(benchmark::State& state) {
  run_agent_interval(state, /*instrumented=*/false);
}
BENCHMARK(BM_AgentIntervalDisabled);

void BM_AgentIntervalInstrumented(benchmark::State& state) {
  run_agent_interval(state, /*instrumented=*/true);
}
BENCHMARK(BM_AgentIntervalInstrumented);

void BM_SimulatedSecond(benchmark::State& state) {
  // Whole-stack throughput: one simulated second of one socket running
  // CG under DUFP (1000 ticks + 5 control intervals).
  const auto& prof = workloads::profile(workloads::AppId::cg);
  for (auto _ : state) {
    state.PauseTiming();
    hw::MachineConfig machine;
    machine.sockets = 1;
    sim::SimulationOptions opts;
    opts.seed = 7;
    sim::Simulation s(machine, prof, opts);
    state.ResumeTiming();
    for (int i = 0; i < 1000 && s.step(); ++i) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatedSecond)->Unit(benchmark::kMillisecond);

// The event-leaping tradeoff, measured as a pair on the same warm rig:
// leap_horizon() is the planner's per-decision cost ("how far can we
// jump"), step() the exact per-tick cost a leap of N ticks amortizes —
// one planner call plus N lane-add ticks replaces N full steps.  The
// pair keeps the planner honest: it runs on every leap attempt, so it
// must stay well under the step cost it saves.
void BM_LeapHorizon(benchmark::State& state) {
  const auto& prof = workloads::profile(workloads::AppId::cg);
  hw::MachineConfig machine;
  machine.sockets = 4;
  sim::SimulationOptions opts;
  opts.seed = 7;
  sim::Simulation s(machine, prof, opts);
  for (int i = 0; i < 50; ++i) s.step();  // windows filled, fixed point up
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.leap_horizon());
  }
}
BENCHMARK(BM_LeapHorizon);

void BM_PlainStep(benchmark::State& state) {
  const auto& prof = workloads::profile(workloads::AppId::cg);
  hw::MachineConfig machine;
  machine.sockets = 4;
  sim::SimulationOptions opts;
  opts.seed = 7;
  auto s = std::make_unique<sim::Simulation>(machine, prof, opts);
  for (int i = 0; i < 50; ++i) s->step();
  for (auto _ : state) {
    if (!s->step()) {
      state.PauseTiming();
      s = std::make_unique<sim::Simulation>(machine, prof, opts);
      for (int i = 0; i < 50; ++i) s->step();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_PlainStep);

}  // namespace

BENCHMARK_MAIN();
