// Fig. 3a: DUFP's impact on execution time — slowdown (% over the default
// run) per application and tolerated slowdown, with min/max error bars,
// for both DUF and DUFP.
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner("Fig. 3a: impact on performance (slowdown %)",
                      "Fig. 3a (Sec. V-A)");
  const auto evals = bench::run_full_grid();
  const auto& tols = harness::paper_tolerances();

  for (PolicyMode mode : {PolicyMode::duf, PolicyMode::dufp}) {
    std::printf("\n--- %s: slowdown %% (mean [min..max]) ---\n",
                harness::policy_mode_name(mode).c_str());
    std::vector<std::string> header{"app"};
    for (double t : tols) header.push_back(bench::tol_label(t));
    TextTable table(header);
    for (const auto& e : evals) {
      std::vector<std::string> row{workloads::app_name(e.app())};
      for (double t : tols) {
        row.push_back(bench::with_bar(e.slowdown_pct(mode, t),
                                      e.slowdown_pct_min(mode, t),
                                      e.slowdown_pct_max(mode, t)));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  // Respect statistics, as the paper reports them (Sec. V-A).
  int total = 0;
  int respected = 0;
  double worst_excess = 0.0;
  std::string worst_config;
  for (const auto& e : evals) {
    for (double t : tols) {
      ++total;
      const double slow = e.slowdown_pct(PolicyMode::dufp, t);
      const double excess = slow - t * 100.0;
      if (excess <= 0.3) {
        ++respected;
      } else if (excess > worst_excess) {
        worst_excess = excess;
        worst_config = workloads::app_name(e.app()) + " @ " +
                       bench::tol_label(t);
      }
    }
  }
  std::printf(
      "\nDUFP respects the tolerated slowdown for %d of %d configurations"
      " (%.0f %%).\n", respected, total, 100.0 * respected / total);
  if (!worst_config.empty()) {
    std::printf("Largest excess beyond tolerance: %.2f points (%s).\n",
                worst_excess, worst_config.c_str());
  }
  std::printf(
      "Paper: respected for 34/40 (85 %%); remaining configurations stay\n"
      "within ~3 points (LAMMPS, CG @20, UA @0 are the violators).\n");

  std::printf("\n");
  bench::write_grid_csv(
      "fig3a_slowdown.csv", {"slowdown_pct", "min", "max"}, evals,
      [](const harness::Evaluation& e, PolicyMode mode, double t) {
        return std::vector<std::string>{
            fmt_double(e.slowdown_pct(mode, t), 3),
            fmt_double(e.slowdown_pct_min(mode, t), 3),
            fmt_double(e.slowdown_pct_max(mode, t), 3)};
      });
  return 0;
}
