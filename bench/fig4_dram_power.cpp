// Fig. 4: impact of DUFP on DRAM power consumption — savings (% below the
// default run's average DRAM power), DUF vs DUFP.
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"

using namespace dufp;
using harness::PolicyMode;

int main() {
  bench::print_banner("Fig. 4: impact on DRAM power consumption (savings %)",
                      "Fig. 4 (Sec. V-C)");
  const auto evals = bench::run_full_grid();
  const auto& tols = harness::paper_tolerances();

  for (PolicyMode mode : {PolicyMode::duf, PolicyMode::dufp}) {
    std::printf("\n--- %s: DRAM power savings %% ---\n",
                harness::policy_mode_name(mode).c_str());
    std::vector<std::string> header{"app"};
    for (double t : tols) header.push_back(bench::tol_label(t));
    TextTable table(header);
    for (const auto& e : evals) {
      std::vector<double> row;
      for (double t : tols) row.push_back(e.dram_power_savings_pct(mode, t));
      table.add_row(workloads::app_name(e.app()), row);
    }
    table.print(std::cout);
  }

  double best = -1e9;
  std::string best_cfg;
  for (const auto& e : evals) {
    for (double t : tols) {
      const double s = e.dram_power_savings_pct(PolicyMode::dufp, t);
      if (s > best) {
        best = s;
        best_cfg =
            workloads::app_name(e.app()) + " @ " + bench::tol_label(t);
      }
    }
  }
  std::printf("\nBest DUFP DRAM savings: %.2f %% (%s).\n", best,
              best_cfg.c_str());
  std::printf(
      "Paper: savings for most configurations, best ~8.83 %% on CG @20 %%;\n"
      "only MG @0 %% shows a small (~0.8 %%) loss.\n");

  bench::write_grid_csv(
      "fig4_dram_power.csv", {"dram_savings_pct"}, evals,
      [](const harness::Evaluation& e, PolicyMode mode, double t) {
        return std::vector<std::string>{
            fmt_double(e.dram_power_savings_pct(mode, t), 3)};
      });
  return 0;
}
