// Fleet-scale hierarchical budgeting: every registered fleet allocator
// runs the same traffic on the same budget tree under one global cap,
// and the bench ranks them on total energy, slowdown-violation rate and
// Jain's fairness.  Each fleet is executed twice — in-process serial and
// fanned across forked shard workers under the supervisor — and the
// finalized outputs are byte-compared, extending the shard determinism
// guarantee to the fleet layer at bench scale.
//
// Default shape is 8 racks x 8 nodes x 16 sockets = 1024 sockets; the
// traffic, epochs and budget follow the FleetSpec defaults below.
//
// Knobs:
//   DUFP_SMOKE=1               2 x 2 x 2 fleet, 3 epochs: CI smoke
//   DUFP_FLEET_RACKS / DUFP_FLEET_NODES / DUFP_SOCKETS
//                              tree shape (sockets = per node)
//   DUFP_FLEET_ALLOCATOR=A     rank only this allocator
//   DUFP_FLEET_BUDGET=W        global cap (default 75% of uncapped)
//   DUFP_FLEET_TRAFFIC=P / DUFP_FLEET_TRAFFIC_SEED=S
//                              traffic profile and stream seed
//   DUFP_OUT_DIR=DIR           where BENCH_fleet_scaling.json and
//                              fleet_scaling.csv land (default out)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fleet/allocator.h"
#include "fleet/shard.h"
#include "fleet/spec.h"
#include "harness/supervisor.h"

namespace dufp::bench {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct AllocatorRow {
  std::string allocator;
  fleet::FleetOutputs outputs;
  double serial_wall = 0.0;
  double sharded_wall = 0.0;
  bool identical = true;
};

int run_main() {
  const bool smoke = std::getenv("DUFP_SMOKE") != nullptr;
  const auto env = harness::BenchOptions::from_env();

  print_banner("fleet_scaling: hierarchical budgeting allocator shoot-out",
               "fleet-scale extension of the paper's power capping (ROADMAP),"
               " not a paper figure");

  fleet::FleetSpec base;
  base.name = smoke ? "fleet-smoke" : "fleet-bench";
  if (smoke) {
    base.topology = {2, 2, 2};
    base.epochs = 3;
    base.epoch_seconds = 0.5;
  } else {
    base.topology = {env.fleet_racks ? env.fleet_racks : 8,
                     env.fleet_nodes_per_rack, env.sockets};
    // The BenchOptions defaults describe a single 4-socket machine;
    // the fleet default is the ISSUE's 1024-socket shape.
    if (env.fleet_racks == 2 && env.fleet_nodes_per_rack == 2 &&
        env.sockets == 4) {
      base.topology = {8, 8, 16};
    }
    base.epochs = 6;
    base.epoch_seconds = 0.5;
  }
  base.traffic_profile = env.fleet_traffic_profile;
  base.traffic_seed = env.fleet_traffic_seed;
  // Default cap: 75% of the uncapped fleet — tight enough that the
  // allocator's choices decide who throttles.
  base.global_budget_w =
      env.fleet_budget_w > 0.0
          ? env.fleet_budget_w
          : 0.75 * base.max_cap_w *
                static_cast<double>(base.topology.socket_count());
  base.fault_rate = env.fault_rate;
  base.fault_seed = env.fault_seed;

  std::vector<std::string> allocators;
  if (!env.fleet_allocator.empty()) {
    allocators.push_back(env.fleet_allocator);
  } else {
    allocators = fleet::FleetAllocatorRegistry::instance().names();
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const int workers = static_cast<int>(hw > 4 ? 4 : (hw > 0 ? hw : 1));
  std::printf(
      "fleet: %d racks x %d nodes x %d sockets = %zu sockets, %d epochs, "
      "budget %.0f W (%.0f%% of uncapped), traffic %s seed %llu\n",
      base.topology.racks, base.topology.nodes_per_rack,
      base.topology.sockets_per_node, base.topology.socket_count(),
      base.epochs, base.global_budget_w,
      100.0 * base.global_budget_w /
          (base.max_cap_w * static_cast<double>(base.topology.socket_count())),
      base.traffic_profile.c_str(),
      static_cast<unsigned long long>(base.traffic_seed));
  std::printf("sharded leg: %d supervised worker(s)\n\n", workers);

  std::vector<AllocatorRow> rows;
  for (const std::string& name : allocators) {
    fleet::FleetSpec spec = base;
    spec.allocator = name;

    AllocatorRow row;
    row.allocator = name;
    double t0 = now_seconds();
    row.outputs = fleet::run_fleet_serial(spec);
    row.serial_wall = now_seconds() - t0;

    // Fan the same fleet across forked workers under the supervisor and
    // demand byte-identical finalized outputs.
    const std::string dir = out_path("fleet_bench_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    harness::SupervisorOptions sup;
    sup.out_dir = dir;
    sup.workers = workers;
    sup.chunk_size = 1;
    t0 = now_seconds();
    const auto report = fleet::supervise_fleet_run(spec, sup);
    harness::GatherOptions gopts;
    gopts.partial = true;
    const auto gathered =
        fleet::gather_fleet_report(spec, report.output_files, gopts);
    if (!gathered.complete()) {
      std::fprintf(stderr, "fleet_scaling: %zu node(s) unrecovered under %s\n",
                   gathered.missing.size(), name.c_str());
      return 1;
    }
    const auto sharded = fleet::finalize_fleet(spec, gathered.results);
    row.sharded_wall = now_seconds() - t0;
    row.identical =
        sharded.allocation_csv == row.outputs.allocation_csv &&
        sharded.summary_csv == row.outputs.summary_csv &&
        sharded.prometheus == row.outputs.prometheus;
    std::filesystem::remove_all(dir);

    std::printf(
        "%-12s energy %12.1f J  violations %5.1f%%  jain %.4f  speed %.3f  "
        "(serial %.2fs, sharded %.2fs, bytes %s)\n",
        name.c_str(), row.outputs.total_energy_j,
        100.0 * row.outputs.violation_rate, row.outputs.jain_fairness,
        row.outputs.mean_speed, row.serial_wall, row.sharded_wall,
        row.identical ? "identical" : "DIFFER");
    rows.push_back(std::move(row));
  }

  // Rank on total energy among allocators that keep the violation rate
  // lowest; print the scoreboard grouped by violation rate first.
  std::printf("\nranking (violation rate, then energy):\n");
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&rows](std::size_t a, std::size_t b) {
    if (rows[a].outputs.violation_rate != rows[b].outputs.violation_rate) {
      return rows[a].outputs.violation_rate < rows[b].outputs.violation_rate;
    }
    return rows[a].outputs.total_energy_j < rows[b].outputs.total_energy_j;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const AllocatorRow& r = rows[order[rank]];
    std::printf("  %zu. %-12s violations %5.1f%%  energy %12.1f J  jain "
                "%.4f\n",
                rank + 1, r.allocator.c_str(),
                100.0 * r.outputs.violation_rate, r.outputs.total_energy_j,
                r.outputs.jain_fairness);
  }

  // Per-allocator scorecard CSV: the concatenated summary rows.
  std::string csv;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string& s = rows[i].outputs.summary_csv;
    if (i == 0) {
      csv += s;
    } else {
      csv += s.substr(s.find('\n') + 1);  // skip the repeated header
    }
  }
  const std::string csv_path = out_path("fleet_scaling.csv");
  if (std::FILE* f = std::fopen(csv_path.c_str(), "wb")) {
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("\nscorecard written to %s\n", csv_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }

  bool all_identical = true;
  std::string json = "{\n";
  json += "  \"schema_version\": 1,\n";
  json += "  \"bench\": \"fleet_scaling\",\n";
  json += strf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += strf(
      "  \"config\": {\n"
      "    \"racks\": %d,\n"
      "    \"nodes_per_rack\": %d,\n"
      "    \"sockets_per_node\": %d,\n"
      "    \"sockets\": %zu,\n"
      "    \"epochs\": %d,\n"
      "    \"budget_w\": %.6f,\n"
      "    \"traffic\": \"%s\",\n"
      "    \"workers\": %d,\n"
      "    \"host_cpus\": %u\n"
      "  }",
      base.topology.racks, base.topology.nodes_per_rack,
      base.topology.sockets_per_node, base.topology.socket_count(),
      base.epochs, base.global_budget_w, base.traffic_profile.c_str(),
      workers, hw);
  for (const AllocatorRow& r : rows) {
    all_identical = all_identical && r.identical;
    json += strf(
        ",\n"
        "  \"%s\": {\n"
        "    \"total_energy_j\": %.6f,\n"
        "    \"violation_rate\": %.6f,\n"
        "    \"jain_fairness\": %.6f,\n"
        "    \"mean_speed\": %.6f,\n"
        "    \"serial_wall_seconds\": %.6f,\n"
        "    \"sharded_wall_seconds\": %.6f,\n"
        "    \"identical_bytes\": %s\n"
        "  }",
        r.allocator.c_str(), r.outputs.total_energy_j,
        r.outputs.violation_rate, r.outputs.jain_fairness,
        r.outputs.mean_speed, r.serial_wall, r.sharded_wall,
        r.identical ? "true" : "false");
  }
  json += "\n}\n";

  const std::string path = out_path("BENCH_fleet_scaling.json");
  if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("JSON written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace dufp::bench

int main() { return dufp::bench::run_main(); }
