// Shared plumbing for the figure-reproduction benches: grid execution,
// uniform headers, CSV dumps.
//
// Environment knobs (all benches, read via harness::BenchOptions):
//   DUFP_REPS=N     runs per cell (default 10, the paper's protocol)
//   DUFP_SOCKETS=N  sockets simulated (default 4 = yeti-2)
//   DUFP_THREADS=N  worker threads for the experiment engine
//                   (default 0 = one per hardware thread)
//   DUFP_QUIET=1    suppress progress notes on stderr
//   DUFP_FAULT_RATE=R / DUFP_FAULT_SEED=S
//                   R > 0 runs the grid under a deterministic fault storm
//                   (see faults::FaultOptions::storm); health counters are
//                   reported alongside the figures
//   DUFP_OUT_DIR=D  directory all CSV / trace / telemetry files land in
//                   (default "out", created on demand)
//   DUFP_TELEMETRY=1
//                   enable the telemetry plane where a bench supports it
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/string_util.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/options.h"
#include "harness/runner.h"
#include "workloads/profiles.h"

namespace dufp::bench {

inline void print_banner(const std::string& what, const std::string& paper_ref) {
  const auto opts = harness::BenchOptions::from_env();
  std::printf("=============================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Machine: simulated Grid'5000 yeti-2 (%d x Xeon Gold 6130), "
              "%d repetitions per cell\n",
              opts.sockets, opts.repetitions);
  if (opts.fault_rate > 0.0) {
    std::printf("Fault injection: storm at rate %g, seed %llu "
                "(DUFP_FAULT_RATE / DUFP_FAULT_SEED)\n",
                opts.fault_rate,
                static_cast<unsigned long long>(opts.fault_seed));
  }
  std::printf("=============================================================\n");
}

/// One-line roll-up of a cell's health counters for fault-storm output.
inline std::string health_summary(const harness::HealthTotals& h) {
  return strf(
      "faults=%llu retries=%llu failures=%llu read_fail=%llu rejected=%llu "
      "degraded=%llu reengaged=%llu degraded_intervals=%llu",
      static_cast<unsigned long long>(h.faults_injected),
      static_cast<unsigned long long>(h.actuation_retries),
      static_cast<unsigned long long>(h.actuation_failures),
      static_cast<unsigned long long>(h.sample_read_failures),
      static_cast<unsigned long long>(h.samples_rejected),
      static_cast<unsigned long long>(h.degradations),
      static_cast<unsigned long long>(h.reengagements),
      static_cast<unsigned long long>(h.intervals_degraded));
}

/// Runs the full evaluation grid the paper's Fig. 3 / Fig. 4 share:
/// every application x {DUF, DUFP} x {0, 5, 10, 20} %.  All jobs go
/// through one ExperimentPlan, so DUFP_THREADS parallelises across the
/// whole grid, not just within one app.
inline std::vector<harness::Evaluation> run_full_grid() {
  return harness::evaluate_apps(
      workloads::all_apps(),
      {harness::PolicyMode::duf, harness::PolicyMode::dufp},
      harness::paper_tolerances(),
      harness::BenchOptions::from_env().repetitions);
}

/// Formats "val [min..max]" for error-bar style cells.
inline std::string with_bar(double val, double lo, double hi) {
  return strf("%6.2f [%6.2f..%6.2f]", val, lo, hi);
}

inline std::string tol_label(double tol) {
  return strf("%d%%", static_cast<int>(tol * 100 + 0.5));
}

/// `<DUFP_OUT_DIR>/<filename>`, creating the directory on demand — every
/// bench output file goes through this.
inline std::string out_path(const std::string& filename) {
  return harness::BenchOptions::from_env().out_path(filename);
}

/// The CSV shape the Fig. 3 / Fig. 4 benches share: one row per
/// app x {DUF, DUFP} x tolerance with `value_headers` extra columns,
/// filled by `cell(eval, mode, tolerance)`.  Writes under DUFP_OUT_DIR
/// and reports the path on stdout.
template <typename CellFn>
void write_grid_csv(const std::string& filename,
                    const std::vector<std::string>& value_headers,
                    const std::vector<harness::Evaluation>& evals,
                    CellFn&& cell) {
  const std::string path = out_path(filename);
  CsvWriter csv(path);
  std::vector<std::string> header{"app", "mode", "tolerance_pct"};
  header.insert(header.end(), value_headers.begin(), value_headers.end());
  csv.write_row(header);
  for (const auto& e : evals) {
    for (harness::PolicyMode mode :
         {harness::PolicyMode::duf, harness::PolicyMode::dufp}) {
      for (double t : harness::paper_tolerances()) {
        std::vector<std::string> row{workloads::app_name(e.app()),
                                     harness::policy_mode_name(mode),
                                     fmt_double(t * 100, 0)};
        for (std::string& v : cell(e, mode, t)) row.push_back(std::move(v));
        csv.write_row(row);
      }
    }
  }
  std::printf("Raw series written to %s\n", path.c_str());
}

}  // namespace dufp::bench
